"""Span-based request tracing and the live recorder.

The bench harness produces Table 1 *offline*: run a workload, divide
``host.accounting`` by the request count.  The :class:`Recorder` makes
the same attribution **live**: hosts, the fabric and the KV dispatch
layer call nullable hooks on their hot paths, and the recorder folds
every charge into a :class:`~repro.obs.registry.MetricsRegistry` —
per-stage totals (the paper's networking / data-management /
persistence classes, see :mod:`repro.obs.stages`), per-category
totals, per-request spans in a fixed-size ring buffer for post-mortem,
and callback gauges over queue depth, utilisation, pools and
connections.

Overhead discipline (the tentpole requirement):

- **Disabled is free.**  Every hook site is guarded by
  ``if recorder is not None`` — one attribute load and branch, zero
  allocation, zero metric samples.
- **Enabled is cheap.**  A slice record is one walk over the context's
  category dict (a handful of keys) against cached counter handles; a
  request span is the same walk plus one ring append.  Gauges are
  callback-backed, so keeping them "current" costs nothing between
  snapshots.

Request spans use consumed-prefix attribution: within one
run-to-completion slice, the charges accumulated *before* the dispatch
layer sees a request (driver/IP/TCP receive, HTTP parse) belong to
that request; the recorder tracks how much of the context each span
has consumed, so back-to-back requests in one slice split the slice
correctly and response transmission lands in the span that sent it.

**Span links** (Homa retransmissions): a sender-timeout retransmit of
a Homa message is the *same logical request* trying again.  The
transport reports every send attempt through nullable hooks, and the
recorder threads one chain per RPC id through the ring — each
retransmit becomes a zero-cost ``homa.rtx.*`` span linked to its
predecessor, the server's handler span joins the chain with the
retransmit count, and the client's completion span closes it with the
RTT measured from the *first* attempt (so retries never double-count
RTT or Table-1 stage totals: one logical request, one handler span,
one RTT sample).
"""

from collections import deque

from repro.obs.registry import MetricsRegistry
from repro.obs.stages import STAGES, classify
from repro.obs.tdigest import TDigest, merged

#: Ring-buffer capacity when the caller does not choose one.
DEFAULT_TRACE_CAPACITY = 1024

#: RPC chains remembered for span linking before the oldest quarter is
#: evicted (mirrors the transport's completed-RPC dedup memory).
RPC_CHAIN_MEMORY = 65536


class Span:
    """One request's lifecycle: stage-classed cost plus identity.

    ``span_id`` is unique per recorder; ``links`` names predecessor
    span ids in the same logical-request chain (Homa retransmissions),
    ``rpc_id``/``attempt``/``retransmits`` carry the chain identity —
    ``None``/0/() for plain unlinked spans.
    """

    __slots__ = ("kind", "status", "core", "t_end", "total_ns", "stages",
                 "span_id", "rpc_id", "attempt", "retransmits", "links")

    def __init__(self, kind, status, core, t_end, total_ns, stages,
                 span_id=0, rpc_id=None, attempt=0, retransmits=0, links=()):
        self.kind = kind
        self.status = status
        self.core = core
        self.t_end = t_end
        self.total_ns = total_ns
        self.stages = stages
        self.span_id = span_id
        self.rpc_id = rpc_id
        self.attempt = attempt
        self.retransmits = retransmits
        self.links = tuple(links)

    def as_dict(self):
        return {
            "kind": self.kind,
            "status": self.status,
            "core": self.core,
            "t_end_ns": self.t_end,
            "total_ns": self.total_ns,
            "stages": dict(self.stages),
            "span_id": self.span_id,
            "rpc_id": self.rpc_id,
            "attempt": self.attempt,
            "retransmits": self.retransmits,
            "links": list(self.links),
        }

    def __repr__(self):
        linked = f" rpc={self.rpc_id}" if self.rpc_id is not None else ""
        return (
            f"<Span {self.kind} {self.status} core={self.core} "
            f"total={self.total_ns:.0f}ns{linked}>"
        )


class TraceRing:
    """Fixed-capacity ring of completed spans (oldest evicted first)."""

    def __init__(self, capacity=DEFAULT_TRACE_CAPACITY):
        if capacity < 1:
            raise ValueError("trace ring needs capacity >= 1")
        self.capacity = capacity
        self._spans = deque(maxlen=capacity)
        self.appended = 0

    def append(self, span):
        self._spans.append(span)
        self.appended += 1

    def __len__(self):
        return len(self._spans)

    def __iter__(self):
        return iter(self._spans)

    @property
    def dropped(self):
        return max(0, self.appended - self.capacity)

    def spans(self, last=None):
        items = list(self._spans)
        return items if last is None else items[-last:]

    def dump(self, last=None):
        """JSON-ready list of the newest ``last`` spans (all by default)."""
        return [span.as_dict() for span in self.spans(last)]

    def clear(self):
        self._spans.clear()
        self.appended = 0


class _HostHandles:
    """Cached per-host counter handles so slice recording is dict-walk cheap."""

    __slots__ = ("role", "stage", "category", "slices", "slice_ns")

    def __init__(self, registry, role):
        self.role = role
        self.stage = {s: registry.counter(f"{role}.stage.{s}_ns") for s in STAGES}
        self.category = {}
        self.slices = registry.counter(f"{role}.slices")
        self.slice_ns = registry.counter(f"{role}.slice_ns")


class Recorder:
    """The live observability hub: hosts/fabric/servers report into it.

    Construct one (optionally around an existing registry), then attach
    the pieces of the world it should watch::

        recorder = Recorder(sim=testbed.sim)
        recorder.attach_host(testbed.server, "server")
        recorder.attach_host(testbed.client, "client")
        recorder.attach_fabric(testbed.fabric)
        recorder.attach_server(testbed.kv)          # request spans + kv stats
        recorder.attach_overload(controller)        # shed/reclaim/degrade

    ``repro.storage.serve`` does all of this when its config enables
    metrics.  Everything lands in :attr:`registry`; completed request
    spans additionally land in :attr:`ring`.
    """

    def __init__(self, sim=None, registry=None, trace_capacity=DEFAULT_TRACE_CAPACITY):
        self.sim = sim
        self.registry = registry if registry is not None else MetricsRegistry(sim)
        if self.registry.sim is None and sim is not None:
            self.registry.sim = sim
        self.ring = TraceRing(trace_capacity)
        self._hosts = {}          # host -> _HostHandles
        self._busy_baseline = {}  # (host, core_index) -> busy_ns at window start
        # Request-span consumed-prefix state (single in-flight slice:
        # the simulator is sequential, so one cursor suffices).
        self._span_ctx = None
        self._span_consumed = {}
        self._span_elapsed = 0.0
        # Span-link state: one chain per Homa RPC id, fed by transport
        # hooks; insertion-ordered so eviction drops the oldest.
        self._span_seq = 0
        self._rpc_chains = {}
        # Per-core request-latency digests; merged on demand into the
        # server-wide quantile view (the multicore aggregation path).
        self._core_digests = {}
        # Cached hot-path handles (created lazily on first use).
        self._wire_ns = self.registry.counter("fabric.wire_ns")
        self._wire_frames = self.registry.counter("fabric.wire_frames")
        self._requests = self.registry.counter("server.requests")
        self._request_ns = self.registry.histogram("server.request_ns")
        self._request_stage = {
            s: self.registry.counter(f"server.request.stage.{s}_ns") for s in STAGES
        }
        self._kind_counters = {}
        self._status_counters = {}
        # Eager, not lazy: the snapshot schema must not change shape
        # mid-run when the first client span lands (--watch compares
        # periodic snapshots against the final one key-for-key).
        self._client_requests = self.registry.counter("client.requests")
        self._client_rtt = self.registry.histogram("client.rtt_ns")

    # -- attachment ------------------------------------------------------------

    def attach_host(self, host, role=None):
        """Watch a host: slice recording plus core/pool/stack gauges."""
        role = role or host.name
        if host in self._hosts:
            return self
        if self.sim is None:
            self.sim = host.sim
            if self.registry.sim is None:
                self.registry.sim = host.sim
        self._hosts[host] = _HostHandles(self.registry, role)
        host.recorder = self
        registry = self.registry
        sim = host.sim
        for core in host.cpus.cores:
            key = (host, core.index)
            self._busy_baseline[key] = core.busy_time
            prefix = f"{role}.core{core.index}"
            registry.gauge(f"{prefix}.busy_ns",
                           fn=lambda c=core: c.busy_time)
            registry.gauge(f"{prefix}.queue_ns",
                           fn=lambda c=core, s=sim: c.queue_delay(s.now))
            registry.gauge(f"{prefix}.work_items",
                           fn=lambda c=core: float(c.work_items))
            registry.gauge(
                f"{prefix}.utilisation",
                fn=lambda c=core, k=key: self._utilisation(c, k),
            )
        registry.gauge(f"{role}.connections",
                       fn=lambda stack=host.stack: float(stack.connection_count()))
        if host.homa is not None:
            self.attach_transport(host.homa, role)
        for pool_name, pool in (("rx_pool", host.rx_pool), ("tx_pool", host.tx_pool)):
            prefix = f"{role}.{pool_name}"
            registry.gauge(f"{prefix}.in_use",
                           fn=lambda p=pool: float(p.in_use))
            registry.gauge(f"{prefix}.slots",
                           fn=lambda p=pool: float(p.nslots))
            registry.gauge(f"{prefix}.occupancy",
                           fn=lambda p=pool: p.occupancy)
        return self

    def _utilisation(self, core, key):
        window = self.registry.window_ns
        if window <= 0:
            return 0.0
        busy = core.busy_time - self._busy_baseline.get(key, 0.0)
        return min(1.0, max(0.0, busy / window))

    def attach_fabric(self, fabric):
        """Watch the fabric: per-frame wire time (queue + links + switch)."""
        fabric.recorder = self
        self.registry.gauge("fabric.frames",
                            fn=lambda f=fabric: float(f.frames))
        self.registry.gauge("fabric.bytes",
                            fn=lambda f=fabric: float(f.bytes))
        return self

    def attach_server(self, kv, role="server"):
        """Watch a KV front-end: request spans plus its stats dict."""
        kv.recorder = self
        for key in kv.stats:
            self.registry.gauge(
                f"{role}.kv.{key}",
                fn=lambda stats=kv.stats, k=key: float(stats.get(k, 0)),
            )
        return self

    def attach_engine(self, engine, role="engine"):
        """Ownership gauges over a packet-native store, if the engine
        has one: how many rx slots the store owns and how many
        references it holds — the counts the chaos leak oracles compare
        against the pool gauges instead of walking store internals."""
        store = getattr(engine, "store", None)
        if store is None:
            return self
        if hasattr(store, "_buffers"):
            self.registry.gauge(
                f"{role}.store.owned",
                fn=lambda s=store: float(len(s._buffers)),
            )
        if hasattr(store, "_refs"):
            self.registry.gauge(
                f"{role}.store.held_refs",
                fn=lambda s=store: float(
                    sum(len(refs) for refs in s._refs.values())
                ),
            )
        return self

    def attach_overload(self, controller, role="overload"):
        """Surface shed/reclaim/degrade decisions as snapshot values."""
        for key in controller.stats:
            self.registry.gauge(
                f"{role}.{key}",
                fn=lambda stats=controller.stats, k=key: float(stats.get(k, 0)),
            )
        self.registry.gauge(
            f"{role}.under_pressure",
            fn=lambda c=controller: 1.0 if c.under_pressure else 0.0,
        )
        return self

    def attach_openloop(self, client, role="openloop"):
        """Watch an open-loop load client: offered-load-side gauges.

        The server-side metrics say how the system copes; these say
        what it is being *asked* to cope with — instantaneous offered
        rate, client-side backlog (requests that have arrived but found
        no free pooled socket), in-flight count, and the churn /
        handshake totals.  ``repro-stats --openloop --watch`` streams
        them next to the admission counters so the knee is visible
        live.
        """
        registry = self.registry
        registry.gauge(f"{role}.rate_rps",
                       fn=lambda c=client: c.current_rate_rps())
        registry.gauge(f"{role}.backlog",
                       fn=lambda c=client: float(c.backlog))
        registry.gauge(f"{role}.inflight",
                       fn=lambda c=client: float(c.inflight))
        registry.gauge(f"{role}.sockets",
                       fn=lambda c=client: float(c.open_sockets))
        registry.gauge(f"{role}.arrivals",
                       fn=lambda c=client: float(c.stats.arrivals_total))
        registry.gauge(f"{role}.admitted",
                       fn=lambda c=client: float(c.stats.admitted))
        registry.gauge(f"{role}.shed",
                       fn=lambda c=client: float(c.stats.shed))
        registry.gauge(f"{role}.churns",
                       fn=lambda c=client: float(c.stats.churns))
        registry.gauge(f"{role}.handshakes",
                       fn=lambda c=client: float(c.stats.handshakes))
        return self

    def attach_transport(self, transport, role=None):
        """Watch a Homa transport: send attempts, retransmit span links.

        Called automatically by :meth:`attach_host` (and by
        ``Host.enable_homa``) once both the host and its transport
        exist, whichever happens second.
        """
        if transport.recorder is self:
            return self
        transport.recorder = self
        if role is None:
            handles = self._hosts.get(transport.host)
            role = handles.role if handles is not None else transport.host.name
        for key in transport.stats:
            self.registry.gauge(
                f"{role}.homa.{key}",
                fn=lambda stats=transport.stats, k=key: float(stats.get(k, 0)),
            )
        for direction in ("request", "reply"):
            self.registry.counter(f"homa.rtx.{direction}")
            self.registry.counter(f"homa.giveup.{direction}")
        self.registry.counter("server.rpc.double_dispatch")
        return self

    def attach_replicator(self, replicator, role="repl"):
        """Watch a primary-side replicator: ack tracking + lag gauges.

        ``<role>.lag_ns`` is the last ack-tracked replication delay
        (first forward → backup ack) and ``<role>.lag_ns_max`` the
        worst observed; ``<role>.pending`` counts puts still waiting on
        a backup ack.  The counters surface every degradation decision.
        """
        replicator.recorder = self
        for key in replicator.stats:
            self.registry.gauge(
                f"{role}.{key}",
                fn=lambda stats=replicator.stats, k=key: float(stats.get(k, 0)),
            )
        self.registry.gauge(
            f"{role}.pending",
            fn=lambda r=replicator: float(r.pending),
        )
        self.registry.gauge(
            f"{role}.suspect_backups",
            fn=lambda r=replicator: float(len(r.suspect)),
        )
        return self

    def attach_applier(self, applier, role="repl.apply"):
        """Watch a backup-side replication applier: apply/dedup counts."""
        for key in applier.stats:
            self.registry.gauge(
                f"{role}.{key}",
                fn=lambda stats=applier.stats, k=key: float(stats.get(k, 0)),
            )
        return self

    # -- span-link chains (Homa retransmissions) -------------------------------

    def _next_span_id(self):
        self._span_seq += 1
        return self._span_seq

    def _chain(self, rpc_id):
        chain = self._rpc_chains.get(rpc_id)
        if chain is None:
            chain = {
                "last_span_id": None,
                "server_spans": 0,
                "client_spans": 0,
                "delivered": set(),
                "gave_up": set(),
                "request": {"attempts": 0, "retransmits": 0,
                            "first_ns": None, "last_ns": None},
                "reply": {"attempts": 0, "retransmits": 0,
                          "first_ns": None, "last_ns": None},
                # Cross-host stitching: a replication RPC carrying this
                # request to another host is a child chain of this one.
                "parent": None,
                "children": [],
            }
            self._rpc_chains[rpc_id] = chain
            if len(self._rpc_chains) > RPC_CHAIN_MEMORY:
                for old in list(self._rpc_chains)[:RPC_CHAIN_MEMORY // 4]:
                    del self._rpc_chains[old]
        return chain

    def chain(self, rpc_id):
        """Read-only view of one RPC's link state (None if unknown)."""
        return self._rpc_chains.get(rpc_id)

    def chains(self):
        """{rpc_id: chain-state} for every RPC the transports reported."""
        return dict(self._rpc_chains)

    def link_rpc(self, parent_rpc_id, child_rpc_id):
        """Stitch ``child_rpc_id`` under ``parent_rpc_id``'s chain.

        Used across hosts: a primary forwarding a client request to its
        backup links the replication RPC's chain to the origin request's
        chain, so the whole multi-hop request is *one* trace — the
        client span, the primary's handler span, every retransmission,
        the replication hop(s), and the backup's apply span.
        """
        if parent_rpc_id == child_rpc_id:
            return
        child = self._chain(child_rpc_id)
        if child["parent"] is not None:
            return  # already stitched (replication retries reuse ids)
        child["parent"] = parent_rpc_id
        parent = self._chain(parent_rpc_id)
        parent["children"].append(child_rpc_id)

    def stitched(self, rpc_id):
        """Every RPC id in the trace containing ``rpc_id``, root first.

        Walks to the root of the parent links, then breadth-first over
        children.  A plain single-host RPC comes back as ``[rpc_id]``.
        """
        seen = set()
        root = rpc_id
        while True:
            chain = self._rpc_chains.get(root)
            if chain is None or chain["parent"] is None or \
                    chain["parent"] in seen:
                break
            seen.add(root)
            root = chain["parent"]
        ordered = []
        frontier = [root]
        visited = set()
        while frontier:
            current = frontier.pop(0)
            if current in visited:
                continue
            visited.add(current)
            ordered.append(current)
            chain = self._rpc_chains.get(current)
            if chain is not None:
                frontier.extend(chain["children"])
        return ordered

    def homa_send(self, rpc_id, direction, retransmit, core=-1):
        """One send attempt of a Homa message (original or retransmit).

        Originals only update chain state (the eventual handler/client
        span represents them); a retransmit additionally appends a
        zero-cost ``homa.rtx.<direction>`` span linked to the chain's
        previous span, so the retry is *visible* without double-counting
        any stage cost or RTT.
        """
        now = self.sim.now if self.sim is not None else 0.0
        chain = self._chain(rpc_id)
        side = chain[direction]
        side["attempts"] += 1
        if side["first_ns"] is None:
            side["first_ns"] = now
        side["last_ns"] = now
        if not retransmit:
            return
        side["retransmits"] += 1
        self.registry.counter(f"homa.rtx.{direction}").inc()
        span_id = self._next_span_id()
        links = () if chain["last_span_id"] is None \
            else (chain["last_span_id"],)
        self.ring.append(Span(
            kind=f"homa.rtx.{direction}", status="rtx", core=core,
            t_end=now, total_ns=0.0, stages={},
            span_id=span_id, rpc_id=rpc_id, attempt=side["attempts"] - 1,
            retransmits=side["retransmits"], links=links,
        ))
        chain["last_span_id"] = span_id

    def homa_delivered(self, rpc_id, direction):
        """The receiver completed reassembly of one direction's message."""
        self._chain(rpc_id)["delivered"].add(direction)

    def homa_give_up(self, rpc_id, direction, core=-1):
        """The sender abandoned the message after MAX_SEND_RETRIES: close
        the chain with a terminal span so no retransmit span is orphaned."""
        now = self.sim.now if self.sim is not None else 0.0
        chain = self._chain(rpc_id)
        chain["gave_up"].add(direction)
        self.registry.counter(f"homa.giveup.{direction}").inc()
        span_id = self._next_span_id()
        links = () if chain["last_span_id"] is None \
            else (chain["last_span_id"],)
        self.ring.append(Span(
            kind=f"homa.giveup.{direction}", status="giveup", core=core,
            t_end=now, total_ns=0.0, stages={},
            span_id=span_id, rpc_id=rpc_id,
            attempt=chain[direction]["attempts"],
            retransmits=chain[direction]["retransmits"], links=links,
        ))
        chain["last_span_id"] = span_id

    # -- hot-path hooks --------------------------------------------------------

    def record_slice(self, host, core, ctx, t_end):
        """Fold one completed processing slice into the registry."""
        handles = self._hosts.get(host)
        if handles is None:
            return
        handles.slices.inc()
        elapsed = ctx.elapsed
        if elapsed:
            handles.slice_ns.inc(elapsed)
        categories = handles.category
        stage_counters = handles.stage
        for category, ns in ctx.by_category.items():
            if not ns:
                continue
            counter = categories.get(category)
            if counter is None:
                counter = self.registry.counter(
                    f"{handles.role}.cat.{category}_ns"
                )
                categories[category] = counter
            counter.inc(ns)
            stage_counters[classify(category)].inc(ns)

    def record_wire(self, ns):
        """One frame's time on the wire (serialisation + queueing + hops)."""
        self._wire_frames.inc()
        self._wire_ns.inc(ns)

    def request_begin(self, ctx):
        """Mark the dispatch layer picking up a request in ``ctx``.

        Charges already in the context but not consumed by an earlier
        span in the same slice (the receive/parse prefix) will belong
        to this request.
        """
        if ctx is not self._span_ctx:
            self._span_ctx = ctx
            self._span_consumed = {}
            self._span_elapsed = 0.0

    def request_end(self, kind, status, core, ctx, rpc_id=None):
        """Close the current request span and record it.

        ``rpc_id`` (Homa) joins the span into its RPC's link chain: the
        span links to the newest retransmit span of the same logical
        request and carries the request-direction retransmit count, and
        a second handler span for the same RPC — a dedup failure —
        increments ``server.rpc.double_dispatch`` instead of passing
        silently.
        """
        if ctx is not self._span_ctx:
            # begin was never called for this slice; attribute the
            # whole context to the span rather than dropping it.
            self._span_consumed = {}
            self._span_elapsed = 0.0
        consumed = self._span_consumed
        stages = {stage: 0.0 for stage in STAGES}
        for category, ns in ctx.by_category.items():
            delta = ns - consumed.get(category, 0.0)
            if delta > 0:
                stages[classify(category)] += delta
        total_ns = max(0.0, ctx.elapsed - self._span_elapsed)
        self._span_ctx = ctx
        self._span_consumed = dict(ctx.by_category)
        self._span_elapsed = ctx.elapsed
        t_end = self.sim.now if self.sim is not None else 0.0
        span_id = self._next_span_id()
        retransmits = 0
        links = ()
        if rpc_id is not None:
            chain = self._chain(rpc_id)
            if chain["last_span_id"] is not None:
                links = (chain["last_span_id"],)
            retransmits = chain["request"]["retransmits"]
            chain["server_spans"] += 1
            chain["last_span_id"] = span_id
            if chain["server_spans"] > 1:
                # One logical request ran the handler twice: the stage
                # totals above were double-charged.  Surface it.
                self.registry.counter("server.rpc.double_dispatch").inc()
        self.ring.append(Span(kind, status, core, t_end, total_ns, stages,
                              span_id=span_id, rpc_id=rpc_id,
                              retransmits=retransmits, links=links))
        self._requests.inc()
        self._request_ns.observe(total_ns)
        core_digest = self._core_digests.get(core)
        if core_digest is None:
            core_digest = TDigest()
            self._core_digests[core] = core_digest
        core_digest.add(total_ns)
        for stage, ns in stages.items():
            if ns:
                self._request_stage[stage].inc(ns)
        kind_counter = self._kind_counters.get(kind)
        if kind_counter is None:
            kind_counter = self.registry.counter(f"server.requests.{kind}")
            self._kind_counters[kind] = kind_counter
        kind_counter.inc()
        status_counter = self._status_counters.get(status)
        if status_counter is None:
            status_counter = self.registry.counter(f"server.status.{status}")
            self._status_counters[status] = status_counter
        status_counter.inc()

    def client_request(self, kind, status, rtt_ns, core=-1, rpc_id=None):
        """Client-side attribution: one completed request as the load
        generator saw it.  The RTT is measured from the *first* send
        attempt to the reply, so a retransmitted RPC contributes one
        sample (with its retry waits included and its retransmit count
        on the span) — never one sample per attempt.
        """
        self._client_requests.inc()
        self._client_rtt.observe(rtt_ns)
        t_end = self.sim.now if self.sim is not None else 0.0
        span_id = self._next_span_id()
        retransmits = 0
        links = ()
        if rpc_id is not None:
            chain = self._chain(rpc_id)
            if chain["last_span_id"] is not None:
                links = (chain["last_span_id"],)
            retransmits = (chain["request"]["retransmits"]
                           + chain["reply"]["retransmits"])
            chain["client_spans"] += 1
            chain["last_span_id"] = span_id
        self.ring.append(Span(
            kind=f"client.{kind}", status=status, core=core, t_end=t_end,
            total_ns=rtt_ns, stages={}, span_id=span_id, rpc_id=rpc_id,
            retransmits=retransmits, links=links,
        ))

    # -- derived views ---------------------------------------------------------

    def request_digest(self):
        """Server-wide request-latency digest: the per-core digests
        merged into one (the multicore aggregation path; equals the
        ``server.request_ns`` histogram's own digest within the bound)."""
        return merged(self._core_digests.values())

    def request_quantile(self, q):
        """Percentile-exact service-time quantile across every core."""
        return self.request_digest().quantile(q)

    def reset(self):
        """Zero the registry and re-anchor utilisation windows."""
        self.registry.reset()
        self.ring.clear()
        self._rpc_chains = {}
        self._core_digests = {}
        for (host, index), _ in list(self._busy_baseline.items()):
            self._busy_baseline[(host, index)] = host.cpus[index].busy_time

    def stage_totals(self):
        """{stage: ns} summed over every attached host."""
        totals = {stage: 0.0 for stage in STAGES}
        for handles in self._hosts.values():
            for stage, counter in handles.stage.items():
                totals[stage] += counter.value
        return totals

    def per_request(self, name, requests=None):
        """A counter's value divided by completed request spans."""
        n = requests if requests is not None else self._requests.value
        if n <= 0:
            return 0.0
        return self.registry.value(name) / n

    def table1(self, requests=None):
        """Live Table-1 view: per-request nanoseconds for every row.

        Stage classes sum over every attached host plus wire time, so
        with the whole testbed attached ``total`` approximates the
        request RTT; with only the server attached it is the server-side
        request cost.  Rows mirror :class:`repro.bench.table1.PAPER`
        (a pure-PUT workload reproduces the paper's numbers; mixed
        workloads get the same classes averaged over all requests).
        """
        n = requests if requests is not None else self._requests.value
        if n <= 0:
            return None
        totals = self.stage_totals()
        wire = self._wire_ns.value
        rows = {
            "requests": n,
            "networking": (totals["networking"] + wire) / n,
            "datamgmt": totals["datamgmt"] / n,
            "persistence": totals["persistence"] / n,
            "other": totals["other"] / n,
            "wire": wire / n,
        }
        # Data-management sub-rows, summed over attached hosts.
        for row, category in (
            ("prep", "datamgmt.prep"),
            ("checksum", "datamgmt.checksum"),
            ("copy", "datamgmt.copy"),
            ("alloc_insert", "datamgmt.insert"),
        ):
            total = 0.0
            for handles in self._hosts.values():
                counter = handles.category.get(category)
                if counter is not None:
                    total += counter.value
            rows[row] = total / n
        rows["total"] = (
            rows["networking"] + rows["datamgmt"]
            + rows["persistence"] + rows["other"]
        )
        return rows

    def __repr__(self):
        return (
            f"<Recorder hosts={len(self._hosts)} "
            f"requests={self._requests.value:.0f} ring={len(self.ring)}>"
        )
