"""``repro-stats``: run a live workload and report what the server saw.

Where ``repro-table1`` reproduces the paper's breakdown *offline* (cost
accounting divided by request count, after the fact), this CLI drives a
real server — TCP or Homa, any engine, any core count — with the
observability layer attached and reports from the **live registry**:
the three-class stage breakdown per request, per-core utilisation and
queueing, pool occupancy, and the request-span ring.

Examples::

    repro-stats --table1                      # live Table 1 vs paper
    repro-stats --transport homa --cores 4    # Homa, multicore
    repro-stats --storm --json -              # chaos storm, snapshot JSON
    repro-stats --trace 5                     # last 5 request spans

``--json`` emits a single JSON document (``{"workload", "snapshot",
"table1", "trace", "watch"}``) that CI schema-checks; everything else
prints human-readable tables.

``--watch US`` takes a full registry snapshot every ``US`` µs of
*simulated* time while the workload runs, instead of only one at the
end.  Each periodic snapshot is schema-identical to the one-shot
``snapshot`` document (same keys, same metric set), so consumers can
reuse their parsers; the human-readable view adds delta and rate
columns computed between consecutive snapshots.
"""

import argparse
import json
import sys

from repro.sim.units import ns_to_us


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Run a short workload with live metrics attached and "
                    "export or pretty-print the registry snapshot, the "
                    "live Table-1 stage breakdown and the trace ring.",
    )
    workload = parser.add_argument_group("workload")
    workload.add_argument("--engine", default="novelsm",
                          help="storage engine (default: novelsm)")
    workload.add_argument("--transport", choices=("tcp", "homa"),
                          default="tcp", help="server transport")
    workload.add_argument("--cores", type=int, default=1,
                          help="server cores (default: 1)")
    workload.add_argument("--connections", type=int, default=1,
                          help="closed-loop connections (default: 1)")
    workload.add_argument("--value-size", type=int, default=1024,
                          help="PUT value bytes (default: 1024, Table 1)")
    workload.add_argument("--method", choices=("PUT", "GET"), default="PUT",
                          help="request type (default: PUT)")
    workload.add_argument("--duration-us", type=float, default=20_000.0,
                          help="measured window, µs of sim time "
                               "(default: 20000)")
    workload.add_argument("--warmup-us", type=float, default=5_000.0,
                          help="warmup before measuring (default: 5000)")
    workload.add_argument("--zero-copy", action="store_true",
                          help="zero-copy GETs (TCP + pktstore engine)")
    workload.add_argument("--overload", action="store_true",
                          help="attach an OverloadController")
    workload.add_argument("--storm", action="store_true",
                          help="run the chaos overload storm instead of "
                               "the closed-loop workload")
    workload.add_argument("--openloop", type=float, metavar="KRPS",
                          default=None,
                          help="drive open-loop offered load at KRPS "
                               "instead of closed loops (TCP + pktstore; "
                               "composes with --watch/--json)")
    workload.add_argument("--seed", type=int, default=1,
                          help="storm / open-loop seed")

    output = parser.add_argument_group("output")
    output.add_argument("--table1", action="store_true",
                        help="print the live Table-1 view against the "
                             "paper's targets")
    output.add_argument("--json", metavar="PATH", default=None,
                        help="write the snapshot document as JSON "
                             "('-' for stdout)")
    output.add_argument("--trace", type=int, metavar="N", default=0,
                        help="show (and include in JSON) the newest N "
                             "request spans")
    output.add_argument("--watch", type=float, metavar="US", default=None,
                        help="snapshot the registry every US µs of sim "
                             "time during the run; print delta/rate "
                             "columns (JSON: 'watch' list, each entry "
                             "schema-identical to 'snapshot')")
    return parser


def _run_wrk(args):
    """Closed-loop wrk workload over a metrics-enabled testbed."""
    from repro.bench.testbed import SERVER_IP, make_testbed, preload
    from repro.bench.wrk import HomaWrkClient, WrkClient
    from repro.storage import ServerConfig

    config = ServerConfig(
        engine=args.engine, transport=args.transport, cores=args.cores,
        zero_copy_get=args.zero_copy, overload=True if args.overload else None,
        metrics=True, trace_capacity=max(1024, args.trace),
    )
    testbed = make_testbed(config=config)
    if args.method == "GET":
        preload(testbed, entries=1000, value_size=args.value_size)
    client_class = HomaWrkClient if args.transport == "homa" else WrkClient
    wrk = client_class(
        testbed.client, SERVER_IP, connections=args.connections,
        value_size=args.value_size, method=args.method,
        duration_ns=args.duration_us * 1_000.0,
        warmup_ns=args.warmup_us * 1_000.0,
    )
    if args.watch:
        stats, watch = _watched_run(testbed, wrk, args.watch * 1_000.0)
    else:
        stats, watch = wrk.run(), []
    workload = {
        "mode": "wrk",
        "engine": args.engine,
        "transport": args.transport,
        "cores": args.cores,
        "connections": args.connections,
        "method": args.method,
        "value_size": args.value_size,
        "completed": stats.completed,
        "avg_rtt_us": stats.avg_rtt_us,
        "p50_rtt_us": stats.percentile_us(50),
        "p99_rtt_us": stats.percentile_us(99),
        "throughput_krps": stats.throughput_krps,
    }
    return testbed.recorder, workload, watch


def _run_openloop(args):
    """Open-loop offered load with queue-pressure admission control.

    The same wiring as one ``repro-bench-soak`` point, but a single
    rate with the full live-registry reporting — ``--watch`` streams
    the offered-side gauges (``openloop.*``) next to the admission
    counters so the knee is visible as it happens.
    """
    from repro.bench.openloop import OpenLoopSource
    from repro.bench.soak import SLOT, default_args
    from repro.bench.testbed import SERVER_IP, make_testbed
    from repro.bench.wrk import OpenLoopWrkClient
    from repro.core.overload import OverloadController, QueuePressure
    from repro.storage import ServerConfig

    defaults = default_args()
    controller = OverloadController()
    config = ServerConfig(
        engine="pktstore", transport="tcp", cores=args.cores,
        overload=controller, metrics=True,
        trace_capacity=max(1024, args.trace),
    )
    testbed = make_testbed(
        config=config, paste_pool_bytes=defaults["pool_slots"] * SLOT,
    )
    controller.watch(QueuePressure(
        testbed.server,
        high_ns=defaults["pressure_high_us"] * 1_000.0,
        low_ns=defaults["pressure_low_us"] * 1_000.0,
    ))
    source = OpenLoopSource(
        args.openloop * 1e3, clients=defaults["clients"],
        key_space=defaults["key_space"], value_size=args.value_size,
        theta=defaults["theta"], churn=defaults["churn"], seed=args.seed,
    )
    wrk = OpenLoopWrkClient(
        testbed.client, SERVER_IP, source,
        duration_ns=args.duration_us * 1_000.0,
        warmup_ns=args.warmup_us * 1_000.0,
    )
    testbed.recorder.attach_openloop(wrk)
    if args.watch:
        stats, watch = _watched_run(testbed, wrk, args.watch * 1_000.0)
    else:
        stats, watch = wrk.run(), []
    workload = {
        "mode": "openloop",
        "engine": "pktstore",
        "transport": "tcp",
        "cores": args.cores,
        "rate_krps": args.openloop,
        "sockets": wrk.sockets,
        "offered_krps": stats.offered_krps,
        "goodput_krps": stats.goodput_krps,
        "completed": stats.completed,
        "admitted": stats.admitted,
        "shed": stats.shed,
        "avg_rtt_us": stats.avg_rtt_us,
        "p50_rtt_us": stats.percentile_us(50),
        "p99_rtt_us": stats.percentile_us(99),
        "throughput_krps": stats.throughput_krps,
    }
    return testbed.recorder, workload, watch


def _watched_run(testbed, wrk, interval_ns):
    """Drive the wrk run in interval-sized steps, snapshotting between.

    Every entry is the full ``registry.snapshot()`` — the same call the
    one-shot export uses — so the periodic documents are schema-identical
    to the final one.  The last snapshot lands at the end of the run
    (after the trailing-ACK grace), so ``watch[-1]`` matches the final
    ``snapshot`` document's totals.
    """
    wrk.start()
    sim = testbed.sim
    stop = wrk.stop_at + 5_000_000.0  # same grace as WrkClient.run
    watch = []
    now = sim.now
    while now < stop:
        now = min(now + interval_ns, stop)
        sim.run(until=now)
        watch.append(testbed.recorder.registry.snapshot())
    return wrk.stats, watch


def _run_storm(args):
    """Chaos overload storm (always metrics-enabled)."""
    from repro.testing.chaos import OverloadStorm

    storm = OverloadStorm(transport=args.transport, cores=args.cores,
                          zero_copy=args.zero_copy, seed=args.seed)
    report = storm.run()
    workload = {
        "mode": "storm",
        "engine": "pktstore",
        "transport": args.transport,
        "cores": args.cores,
        "acked_puts": report.acked_puts,
        "attempted_puts": report.attempted_puts,
        "responses": {str(k): v for k, v in report.responses.items()},
        "violations": [f"{kind}: {detail}"
                       for kind, detail in report.violations],
        "ok": report.ok,
    }
    return storm.testbed.recorder, workload, []


def render_table1(recorder):
    """Live Table-1 rows next to the paper's targets."""
    from repro.bench.report import format_table, pct_delta, us
    from repro.bench.table1 import PAPER

    live = recorder.table1()
    if live is None:
        return "[stats] no completed requests — nothing to break down"
    rows = []
    for label, key in (
        ("Networking (incl. wire)", "networking"),
        ("Request preparation", "prep"),
        ("Checksum calculation", "checksum"),
        ("Data copy", "copy"),
        ("Buffer allocation and insertion", "alloc_insert"),
        ("Data management (sum)", "datamgmt"),
        ("Flush CPU caches to PM", "persistence"),
        ("Other", "other"),
        ("Total", "total"),
    ):
        measured = ns_to_us(live[key])
        paper = PAPER.get(key)
        rows.append((
            label,
            us(paper) if paper is not None else "—",
            us(measured),
            pct_delta(measured, paper) if paper is not None else "—",
        ))
    title = (f"Live Table 1 over {live['requests']:.0f} requests "
             f"(µs per request)")
    return format_table(title, ["Stage", "paper", "live", "delta"], rows)


def render_summary(recorder, workload):
    """Human-readable digest: stages, cores, pools, request histogram."""
    from repro.bench.report import format_table

    registry = recorder.registry
    lines = []
    if workload["mode"] == "wrk":
        lines.append(
            f"[stats] {workload['method']} x{workload['completed']} over "
            f"{workload['transport']}/{workload['engine']}: "
            f"avg {workload['avg_rtt_us']:.2f} µs, "
            f"p99 {workload['p99_rtt_us']:.2f} µs, "
            f"{workload['throughput_krps']:.1f} krps"
        )
    elif workload["mode"] == "openloop":
        lines.append(
            f"[stats] open loop {workload['offered_krps']:.1f} krps offered "
            f"over {workload['sockets']} sockets: "
            f"goodput {workload['goodput_krps']:.1f} krps, "
            f"{workload['admitted']} admitted / {workload['shed']} shed, "
            f"p99 {workload['p99_rtt_us']:.2f} µs "
            f"(scheduled-arrival attribution)"
        )
    else:
        lines.append(
            f"[stats] storm over {workload['transport']}/pktstore: "
            f"{workload['acked_puts']}/{workload['attempted_puts']} PUTs "
            f"acked, responses {workload['responses']}, "
            f"{'clean' if workload['ok'] else 'VIOLATIONS'}"
        )

    requests = registry.value("server.requests")
    if requests > 0:
        stage_rows = []
        for stage in ("networking", "datamgmt", "persistence", "other"):
            total = registry.value(f"server.request.stage.{stage}_ns")
            stage_rows.append((
                stage,
                f"{ns_to_us(total / requests):.2f}",
                f"{ns_to_us(total):.1f}",
            ))
        lines.append(format_table(
            f"Server stage breakdown ({requests:.0f} request spans)",
            ["stage", "µs/req", "µs total"], stage_rows,
        ))

    core_rows = []
    for index in range(64):
        busy = registry.get(f"server.core{index}.busy_ns")
        if busy is None:
            break
        core_rows.append((
            f"core{index}",
            f"{registry.value(f'server.core{index}.utilisation'):.1%}",
            f"{ns_to_us(registry.value(f'server.core{index}.queue_ns')):.2f}",
        ))
    if core_rows:
        lines.append(format_table(
            "Server cores", ["core", "util", "queue µs"], core_rows,
        ))

    hist = registry.get("server.request_ns")
    if hist is not None and hist.count:
        lines.append(
            f"[stats] request service time: mean "
            f"{ns_to_us(hist.mean):.2f} µs, p50 "
            f"{ns_to_us(hist.quantile(0.5)):.2f} µs, p99 "
            f"{ns_to_us(hist.quantile(0.99)):.2f} µs "
            f"(t-digest), n={hist.count}"
        )
    return "\n".join(lines)


def render_watch(watch):
    """Delta/rate table over the periodic snapshots.

    Counters are cumulative, so each row differences against the
    previous snapshot; quantiles come from the (cumulative) digest at
    that instant.
    """
    from repro.bench.report import format_table

    rows = []
    prev_requests = 0.0
    prev_now = None
    for snapshot in watch:
        now = snapshot["sim_now_ns"]
        metrics = snapshot["metrics"]
        requests = metrics.get("server.requests", {}).get("value", 0.0)
        delta = requests - prev_requests
        window = (now - prev_now) if prev_now is not None else now
        rate_krps = delta / window * 1e6 if window > 0 else 0.0
        hist = metrics.get("server.request_ns", {})
        quantiles = hist.get("quantiles", {})
        rows.append((
            f"{now / 1e6:.3f}",
            f"{requests:.0f}",
            f"+{delta:.0f}",
            f"{rate_krps:.1f}",
            f"{ns_to_us(quantiles.get('p50', 0.0)):.2f}",
            f"{ns_to_us(quantiles.get('p99', 0.0)):.2f}",
        ))
        prev_requests, prev_now = requests, now
    return format_table(
        f"Watch: {len(watch)} snapshots",
        ["t (ms)", "requests", "Δreq", "krps", "p50 µs", "p99 µs"], rows,
    )


def render_trace(recorder, last):
    lines = [f"[stats] newest {min(last, len(recorder.ring))} of "
             f"{recorder.ring.appended} spans "
             f"({recorder.ring.dropped} evicted):"]
    for span in recorder.ring.spans(last=last):
        stages = ", ".join(
            f"{stage} {ns_to_us(ns):.2f}" for stage, ns in span.stages.items()
            if ns > 0
        ) or "zero-cost"
        lines.append(
            f"  t={span.t_end / 1e6:10.3f} ms  {span.kind:>6} "
            f"{span.status}  core{span.core}  "
            f"{ns_to_us(span.total_ns):7.2f} µs  [{stages} µs]"
        )
    return "\n".join(lines)


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.watch is not None and args.storm:
        parser.error("--watch drives the wrk workload; drop --storm")
    if args.watch is not None and args.watch <= 0:
        parser.error("--watch interval must be positive")
    if args.openloop is not None:
        if args.storm:
            parser.error("--openloop and --storm are exclusive")
        if args.openloop <= 0:
            parser.error("--openloop rate must be positive")
        runner = _run_openloop
    elif args.storm:
        runner = _run_storm
    else:
        runner = _run_wrk
    recorder, workload, watch = runner(args)

    if args.json is not None:
        document = {
            "workload": workload,
            "snapshot": recorder.registry.snapshot(),
            "table1": recorder.table1(),
            "trace": recorder.ring.dump(last=args.trace) if args.trace else [],
            "watch": watch,
        }
        text = json.dumps(document, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"[stats] snapshot written to {args.json}")
    else:
        print(render_summary(recorder, workload))
        if watch:
            print(render_watch(watch))

    if args.table1:
        print(render_table1(recorder))
    if args.trace and args.json is None:
        print(render_trace(recorder, args.trace))
    return 0


if __name__ == "__main__":
    sys.exit(main())
