"""Metrics registry: counters, gauges and fixed-bucket histograms.

The observability layer's storage.  Three metric kinds, all driven by
the **simulated** clock (never the wall clock — the registry must be
PMLint DET-01 clean so an instrumented run replays byte-identically):

- :class:`Counter` — monotonically increasing total (requests served,
  nanoseconds charged to a stage, frames carried).
- :class:`Gauge` — a point-in-time value.  Either set explicitly or
  *callback-backed*: constructed with ``fn=...`` it reads live system
  state (core queue depth, pool occupancy, connection count) at
  snapshot time, so the hot path pays nothing to keep it current.
- :class:`Histogram` — a :class:`~repro.obs.tdigest.TDigest` behind
  the classic ``le``-bucket snapshot shape.  ``observe`` is two adds
  plus one digest buffer append — the digest is the *only* sample
  store; the fixed per-observation bucket counters of earlier versions
  are gone.  :meth:`Histogram.quantile` answers from the digest
  (percentile-exact within the documented scale-function bound); the
  ``le`` buckets still exist but are **derived views**, materialised
  from the digest's centroids on demand (:attr:`Histogram.counts`),
  and the snapshot emits them **sparsely** — zero-count buckets are
  dropped, only the terminal ``{"le": null}`` overflow entry is always
  present.  The old bucket-edge answer remains as
  :meth:`Histogram.bucket_quantile` (now over derived counts).

Snapshots are plain dicts (JSON-ready) so ``repro-stats`` can export
them and CI can schema-check the output; the document carries
``schema`` (:data:`SNAPSHOT_SCHEMA`) so consumers can detect the
sparse-bucket format.  ``reset`` zeroes counters and histograms but
keeps the metric objects — handles cached by instrumented code stay
valid — and records the reset time, giving windowed rates and
utilisations a well-defined origin.
"""

from bisect import bisect_left

from repro.obs.tdigest import DEFAULT_COMPRESSION, TDigest

#: Default duration buckets (nanoseconds): 1 µs .. 16 ms in powers of
#: two, a range that spans one flush (~60 ns aggregates into the µs
#: buckets) up to a badly queued multi-millisecond request.
DEFAULT_TIME_BUCKETS_NS = tuple(1_000.0 * (2 ** i) for i in range(15))


class Counter:
    """Monotonic total.  ``inc`` is the only mutator."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount
        return self.value

    def reset(self):
        self.value = 0.0

    def describe(self):
        return {"type": "counter", "value": self.value}

    def __repr__(self):
        return f"<Counter {self.name}={self.value:.0f}>"


class Gauge:
    """Point-in-time value; callback-backed gauges read state lazily."""

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name, fn=None):
        self.name = name
        self._value = 0.0
        self.fn = fn

    @property
    def value(self):
        if self.fn is not None:
            return self.fn()
        return self._value

    def set(self, value):
        if self.fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        self._value = value
        return value

    def reset(self):
        if self.fn is None:
            self._value = 0.0

    def describe(self):
        return {"type": "gauge", "value": self.value}

    def __repr__(self):
        return f"<Gauge {self.name}={self.value}>"


#: Quantiles every histogram snapshot reports from its digest.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99, 0.999)

#: Snapshot document version.  v2: histogram buckets are sparse views
#: derived from the t-digest (zero-count buckets elided); v1 (implied
#: by the key's absence) emitted the full fixed bucket array.
SNAPSHOT_SCHEMA = "repro-metrics/v2"


class Histogram:
    """Digest-backed histogram presenting classic ``le`` buckets.

    The t-digest is the only per-observation store — ``observe`` keeps
    no bucket counters, so the hot path is two adds and a buffer
    append regardless of how many bucket edges the snapshot shows.
    ``bounds`` only shape the *view*: :attr:`counts` is derived on
    demand by binning the digest's centroids (a centroid of weight w
    at mean m contributes w to the bucket holding m), which preserves
    ``sum(counts) == count`` exactly while individual buckets are
    approximate within the digest's clustering — the same trade
    :meth:`quantile` already makes.  The digest is serialisable and
    mergeable, so per-core histograms can combine into one server-wide
    quantile view.
    """

    __slots__ = ("name", "bounds", "total", "count", "min", "max", "digest")

    def __init__(self, name, bounds=DEFAULT_TIME_BUCKETS_NS,
                 compression=DEFAULT_COMPRESSION):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError(f"histogram {name}: no buckets")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name}: bounds must strictly increase")
        self.name = name
        self.bounds = bounds
        self.total = 0.0
        self.count = 0
        self.min = None
        self.max = None
        self.digest = TDigest(compression=compression)

    def observe(self, value):
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.digest.add(value)

    @property
    def counts(self):
        """Bucket counts derived from the digest's centroids.

        ``counts[i]`` approximates observations ``<= bounds[i]``
        (``bisect_left`` keeps the inclusive-``le`` contract for
        unmerged samples); the final entry is the overflow.  Exact
        while every sample is its own centroid (small n), approximate
        within centroid clustering after compaction; the total is
        always exact.
        """
        counts = [0] * (len(self.bounds) + 1)
        for mean, weight in self.digest.centroids():
            counts[bisect_left(self.bounds, mean)] += int(round(weight))
        return counts

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Percentile-exact quantile estimate from the t-digest.

        Within ``2pi*sqrt(q(1-q))/compression`` (in quantile space) of
        the exact sample quantile — see :mod:`repro.obs.tdigest`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        return self.digest.quantile(q)

    def bucket_quantile(self, q):
        """The fixed-bucket answer: upper bound of the bucket holding
        the quantile (the pre-digest behaviour, kept for comparison
        and for consumers that must match the ``le`` snapshot).

        The overflow bucket reports the observed maximum (the honest
        answer — its upper edge is unbounded).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def reset(self):
        self.total = 0.0
        self.count = 0
        self.min = None
        self.max = None
        self.digest.reset()

    def describe(self):
        counts = self.counts
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            # Sparse: zero-count buckets are elided; the terminal
            # overflow entry ({"le": null}) is always present, so
            # buckets[-1]["le"] is None and sum(counts) == count hold
            # for every consumer.
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds, counts)
                if count
            ] + [{"le": None, "count": counts[-1]}],
            "quantiles": {
                f"p{q * 100:g}": self.digest.quantile(q)
                for q in SNAPSHOT_QUANTILES
            },
        }

    def __repr__(self):
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.0f}>"


class MetricsRegistry:
    """Named metrics under one namespace, with sim-clock bookkeeping.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent,
    so wiring code can run more than once); requesting an existing name
    as a different kind is an error — it would silently split one
    logical metric across types.
    """

    def __init__(self, sim=None):
        self.sim = sim
        self._metrics = {}
        self.created_at = self.now
        self.reset_at = self.now

    @property
    def now(self):
        """Simulated time; 0.0 when no simulator is attached."""
        return self.sim.now if self.sim is not None else 0.0

    @property
    def window_ns(self):
        """Nanoseconds of simulated time since the last reset."""
        return self.now - self.reset_at

    # -- construction ----------------------------------------------------------

    def _get_or_create(self, name, kind, factory):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name):
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name, fn=None):
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None and gauge.fn is None:
            gauge.fn = fn  # upgrade a plain gauge to callback-backed
        return gauge

    def histogram(self, name, bounds=DEFAULT_TIME_BUCKETS_NS):
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    # -- access ----------------------------------------------------------------

    def get(self, name):
        return self._metrics.get(name)

    def value(self, name, default=0.0):
        """Current value of a counter/gauge (histograms: their mean)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.mean
        return metric.value

    def names(self):
        return sorted(self._metrics)

    def __contains__(self, name):
        return name in self._metrics

    def __len__(self):
        return len(self._metrics)

    # -- snapshot / reset ------------------------------------------------------

    def snapshot(self):
        """JSON-ready dict of every metric plus clock bookkeeping."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "sim_now_ns": self.now,
            "window_ns": self.window_ns,
            "metrics": {
                name: metric.describe()
                for name, metric in sorted(self._metrics.items())
            },
        }

    def reset(self):
        """Zero counters/histograms/settable gauges; keep registrations."""
        for metric in self._metrics.values():
            metric.reset()
        self.reset_at = self.now

    def __repr__(self):
        return f"<MetricsRegistry {len(self._metrics)} metrics>"
