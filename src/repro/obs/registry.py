"""Metrics registry: counters, gauges and fixed-bucket histograms.

The observability layer's storage.  Three metric kinds, all driven by
the **simulated** clock (never the wall clock — the registry must be
PMLint DET-01 clean so an instrumented run replays byte-identically):

- :class:`Counter` — monotonically increasing total (requests served,
  nanoseconds charged to a stage, frames carried).
- :class:`Gauge` — a point-in-time value.  Either set explicitly or
  *callback-backed*: constructed with ``fn=...`` it reads live system
  state (core queue depth, pool occupancy, connection count) at
  snapshot time, so the hot path pays nothing to keep it current.
- :class:`Histogram` — fixed bucket boundaries chosen at construction;
  ``observe`` is one bisect + two adds plus one t-digest buffer append,
  no per-observation allocation beyond the buffered point.  Each
  histogram carries a :class:`~repro.obs.tdigest.TDigest` alongside its
  ``le`` buckets: the buckets keep the JSON snapshot schema (and its
  CI check) stable, while :meth:`Histogram.quantile` answers from the
  digest — percentile-exact within the documented scale-function bound
  instead of bucket-edge-exact.  The old bucketed answer remains as
  :meth:`Histogram.bucket_quantile`.

Snapshots are plain dicts (JSON-ready) so ``repro-stats`` can export
them and CI can schema-check the output.  ``reset`` zeroes counters
and histograms but keeps the metric objects — handles cached by
instrumented code stay valid — and records the reset time, giving
windowed rates and utilisations a well-defined origin.
"""

from bisect import bisect_left

from repro.obs.tdigest import DEFAULT_COMPRESSION, TDigest

#: Default duration buckets (nanoseconds): 1 µs .. 16 ms in powers of
#: two, a range that spans one flush (~60 ns aggregates into the µs
#: buckets) up to a badly queued multi-millisecond request.
DEFAULT_TIME_BUCKETS_NS = tuple(1_000.0 * (2 ** i) for i in range(15))


class Counter:
    """Monotonic total.  ``inc`` is the only mutator."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount
        return self.value

    def reset(self):
        self.value = 0.0

    def describe(self):
        return {"type": "counter", "value": self.value}

    def __repr__(self):
        return f"<Counter {self.name}={self.value:.0f}>"


class Gauge:
    """Point-in-time value; callback-backed gauges read state lazily."""

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name, fn=None):
        self.name = name
        self._value = 0.0
        self.fn = fn

    @property
    def value(self):
        if self.fn is not None:
            return self.fn()
        return self._value

    def set(self, value):
        if self.fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        self._value = value
        return value

    def reset(self):
        if self.fn is None:
            self._value = 0.0

    def describe(self):
        return {"type": "gauge", "value": self.value}

    def __repr__(self):
        return f"<Gauge {self.name}={self.value}>"


#: Quantiles every histogram snapshot reports from its digest.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99, 0.999)


class Histogram:
    """Fixed-boundary histogram: ``len(bounds) + 1`` buckets + a digest.

    Bucket ``i`` counts observations ``<= bounds[i]``; the final bucket
    is the overflow (``> bounds[-1]``).  Boundaries are fixed at
    construction so ``observe`` never allocates a bucket.  A t-digest
    rides along so :meth:`quantile` is percentile-exact (within the
    scale-function bound) rather than bucket-edge-exact; the digest is
    serialisable and mergeable, so per-core histograms can combine into
    one server-wide quantile view.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "min", "max",
                 "digest")

    def __init__(self, name, bounds=DEFAULT_TIME_BUCKETS_NS,
                 compression=DEFAULT_COMPRESSION):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError(f"histogram {name}: no buckets")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name}: bounds must strictly increase")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min = None
        self.max = None
        self.digest = TDigest(compression=compression)

    def observe(self, value):
        # bisect_left keeps the "le" contract: value == bound lands in
        # that bound's bucket, matching the snapshot's inclusive labels.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.digest.add(value)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Percentile-exact quantile estimate from the t-digest.

        Within ``2pi*sqrt(q(1-q))/compression`` (in quantile space) of
        the exact sample quantile — see :mod:`repro.obs.tdigest`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        return self.digest.quantile(q)

    def bucket_quantile(self, q):
        """The fixed-bucket answer: upper bound of the bucket holding
        the quantile (the pre-digest behaviour, kept for comparison
        and for consumers that must match the ``le`` snapshot).

        The overflow bucket reports the observed maximum (the honest
        answer — its upper edge is unbounded).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def reset(self):
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min = None
        self.max = None
        self.digest.reset()

    def describe(self):
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds, self.counts)
            ] + [{"le": None, "count": self.counts[-1]}],
            "quantiles": {
                f"p{q * 100:g}": self.digest.quantile(q)
                for q in SNAPSHOT_QUANTILES
            },
        }

    def __repr__(self):
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.0f}>"


class MetricsRegistry:
    """Named metrics under one namespace, with sim-clock bookkeeping.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent,
    so wiring code can run more than once); requesting an existing name
    as a different kind is an error — it would silently split one
    logical metric across types.
    """

    def __init__(self, sim=None):
        self.sim = sim
        self._metrics = {}
        self.created_at = self.now
        self.reset_at = self.now

    @property
    def now(self):
        """Simulated time; 0.0 when no simulator is attached."""
        return self.sim.now if self.sim is not None else 0.0

    @property
    def window_ns(self):
        """Nanoseconds of simulated time since the last reset."""
        return self.now - self.reset_at

    # -- construction ----------------------------------------------------------

    def _get_or_create(self, name, kind, factory):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name):
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name, fn=None):
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None and gauge.fn is None:
            gauge.fn = fn  # upgrade a plain gauge to callback-backed
        return gauge

    def histogram(self, name, bounds=DEFAULT_TIME_BUCKETS_NS):
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    # -- access ----------------------------------------------------------------

    def get(self, name):
        return self._metrics.get(name)

    def value(self, name, default=0.0):
        """Current value of a counter/gauge (histograms: their mean)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.mean
        return metric.value

    def names(self):
        return sorted(self._metrics)

    def __contains__(self, name):
        return name in self._metrics

    def __len__(self):
        return len(self._metrics)

    # -- snapshot / reset ------------------------------------------------------

    def snapshot(self):
        """JSON-ready dict of every metric plus clock bookkeeping."""
        return {
            "sim_now_ns": self.now,
            "window_ns": self.window_ns,
            "metrics": {
                name: metric.describe()
                for name, metric in sorted(self._metrics.items())
            },
        }

    def reset(self):
        """Zero counters/histograms/settable gauges; keep registrations."""
        for metric in self._metrics.values():
            metric.reset()
        self.reset_at = self.now

    def __repr__(self):
        return f"<MetricsRegistry {len(self._metrics)} metrics>"
