"""Whole-host-kill chaos: does a client ack survive the host that gave it?

:mod:`repro.testing.chaos` storms one server until its pools give out;
this module storms a *cluster* until a host dies.  A closed-loop fleet
of Homa requesters PUTs through the consistent-hash router while the
storm pulls the plug on a primary mid-burst.  Failure detection is the
router's: unanswered RPCs accumulate per node and at the threshold the
router triggers the failover (ring eviction = backup promotion +
transport teardown), with a scheduled failsafe bounding detection in
case the squall of traffic misses the corpse.  Then the oracles:

- **durability** — every client-acked PUT is readable from the key's
  *current* primary after the kill and failover.  Under
  ``ack_policy="sync"`` an ack means two hosts applied the put, so the
  promoted backup must serve it — this is the claim the replication
  design exists to earn;
- **refcount exactness** — on every surviving host, the rx pool's
  in-use count equals the store's owned count and each adopted
  buffer's refcount equals the references the store holds (the same
  per-slot walk as the single-host storm, per survivor);
- **span stitching** — a replicated put is *one* trace: the origin
  RPC's chain and the replication RPC's chain are stitched
  (``Recorder.stitched``), no retransmitted message is left an orphan
  (terminal give-up spans cover messages aimed at the corpse), and no
  logical request ran a handler twice;
- **vacuity** — a storm that never killed anyone, never failed over,
  never acked a put on both sides of the kill, or never acked a put on
  a shard the victim owned has tested nothing, and fails loudly.
"""

from repro.bench.workloads import StormBurstSource
from repro.cluster.topology import ClusterConfig, build_cluster
from repro.net.http import HttpParser, build_request
from repro.sim.units import MILLIS

#: Per-attempt client watchdog.  Far below Homa's 50 ms give-up: the
#: router's failure detection is driven by these expiries, and two of
#: them must fire before the failover (fail_threshold=2).
WATCHDOG_NS = 10 * MILLIS

#: Attempts per logical put before the loop abandons it (counted).
MAX_ATTEMPTS = 8


class ClusterChaosReport:
    """Outcome of one host-kill storm."""

    def __init__(self):
        self.violations = []
        self.responses = {200: 0, 503: 0, 507: 0, 400: 0, 404: 0}
        self.attempted_puts = 0
        self.acked_puts = 0
        self.acked_by_phase = {"pre": 0, "kill": 0, "post": 0}
        self.retries = 0
        self.timeouts = 0
        self.give_ups = 0
        self.abandoned_puts = 0
        self.crashed = None
        self.victim = None
        self.kills = 0
        self.failovers = 0
        self.failover_by = None       # "router" or "failsafe"
        self.stitched_families = 0
        self.degraded_acks = 0
        self.probe_ok = False
        self.repl_stats = {}

    @property
    def ok(self):
        return not self.violations

    def violation(self, kind, detail):
        self.violations.append((kind, detail))

    def summary(self):
        lines = [
            f"[cluster-chaos] puts acked {self.acked_puts}/"
            f"{self.attempted_puts} "
            f"(pre-kill {self.acked_by_phase['pre']}, "
            f"kill-window {self.acked_by_phase['kill']}, "
            f"post-failover {self.acked_by_phase['post']}), "
            f"retries {self.retries}, timeouts {self.timeouts}, "
            f"give-ups {self.give_ups}",
            f"[cluster-chaos] victim {self.victim}: kills {self.kills}, "
            f"failover by {self.failover_by or 'NOBODY'}, "
            f"degraded acks {self.degraded_acks}",
            f"[cluster-chaos] span stitching: {self.stitched_families} "
            f"replicated put(s) traced across hosts",
        ]
        if self.repl_stats:
            lines.append("[cluster-chaos] replication: " + ", ".join(
                f"{k} {v}" for k, v in sorted(self.repl_stats.items())
                if not k.startswith("lag")))
        if self.crashed is not None:
            lines.append(f"[cluster-chaos] CRASH: {self.crashed!r}")
        if self.violations:
            lines.append(
                f"[cluster-chaos] {len(self.violations)} violation(s):")
            for kind, detail in self.violations[:10]:
                lines.append(f"[cluster-chaos]   {kind}: {detail}")
            if len(self.violations) > 10:
                lines.append(
                    f"[cluster-chaos]   ... {len(self.violations) - 10} more")
        else:
            lines.append("[cluster-chaos] contract held: every acked put "
                         "survived the host that acked it")
        return "\n".join(lines)


class _ShardLoop:
    """One closed-loop requester, routed by the live ring each attempt.

    A put retries (same key, same value) after a watchdog expiry or a
    transport give-up, re-routing each time — after the failover the
    same key lands on the promoted backup.  Ack bookkeeping mirrors the
    single-host storm: the durability oracle accepts the newest acked
    value or any value issued after it.
    """

    def __init__(self, world, loop_id, source):
        self.world = world
        self.loop_id = loop_id
        self.source = source
        self.keys = [key.encode() for key in source.keys_for(loop_id)]
        self.sent = 0
        self.done = False
        self.core = None
        self.awaiting = None          # (seq, attempt) of the live RPC
        self.attempt = 0
        self.in_flight = None         # (key, value) awaiting its reply
        self.last_acked = {}          # key -> newest acked value
        self.acked_rpcs = {}          # key -> rpc_id of the acking attempt
        self.acked_phase = {}         # key -> storm phase at ack time
        self.issued_after_ack = {}    # key -> [values issued after last ack]
        self.target = None            # node name of the current attempt

    def start(self, ctx):
        cpus = self.world.client.cpus
        self.core = cpus[self.loop_id % len(cpus)]
        self._next(ctx)

    def resume(self, extra_puts, ctx):
        """Second burst: the same loop issues ``extra_puts`` more."""
        self.source.extend(self.loop_id, extra_puts)
        if self.done:
            self.done = False
            self._next(ctx)

    def _next(self, ctx):
        op = self.source.next_op(self.loop_id)
        if op is None:
            self.done = True
            return
        _method, key_str, value = op
        key = key_str.encode()
        self.in_flight = (key, value)
        self.issued_after_ack.setdefault(key, []).append(value)
        self.sent += 1
        self.attempt = 0
        self.world.report.attempted_puts += 1
        self._fire(key, value, ctx)

    def _fire(self, key, value, ctx):
        seq = self.sent - 1
        token = (seq, self.attempt)
        self.awaiting = token
        self.target = self.world.router.primary(key)
        ip = self.world.router.ip_of(self.target)
        rpc_id = self.world.client.homa.send_request(
            ip, self.world.port,
            build_request("PUT", "/" + key.decode(), value), ctx,
            on_reply=lambda segments, c, t=token: self._on_reply(
                t, segments, c),
            on_giveup=lambda _rpc, t=token: self._on_giveup(t),
        )
        self._rpc_id = rpc_id
        self.world.sim.schedule(WATCHDOG_NS, self._watchdog, token)

    def _retry(self, ctx):
        key, value = self.in_flight
        if self.attempt + 1 >= MAX_ATTEMPTS:
            self.world.report.abandoned_puts += 1
            self.in_flight = None
            self._next(ctx)
            return
        self.attempt += 1
        self.world.report.retries += 1
        self._fire(key, value, ctx)

    def _on_reply(self, token, segments, ctx):
        if self.awaiting != token:
            return  # superseded attempt; a retry already took over
        self.awaiting = None
        self.world.router.report_success(self.target)
        parser = HttpParser(is_response=True)
        status = None
        for segment in segments:
            for message in parser.feed(segment):
                status = message.status
                message.release()
        parser.reset()
        if status is not None:
            self.world.report.responses[status] = \
                self.world.report.responses.get(status, 0) + 1
            if self.in_flight is not None and status == 200:
                key, value = self.in_flight
                self.last_acked[key] = value
                self.acked_rpcs[key] = self._rpc_id
                self.acked_phase[key] = self.world.phase
                self.issued_after_ack[key] = []
                self.world.report.acked_puts += 1
                self.world.report.acked_by_phase[self.world.phase] += 1
        self.in_flight = None
        if not self.done:
            self._next(ctx)

    def _on_giveup(self, token):
        """The transport declared the peer dead (abort_peer/failover):
        skip the rest of the watchdog wait and retry immediately."""
        if self.awaiting != token:
            return
        self.awaiting = None
        self.world.report.give_ups += 1
        self.world.report_failure(self.target)
        self.world.client.process_on_core(self.core, self._retry)

    def _watchdog(self, token):
        if self.awaiting != token:
            return
        self.awaiting = None
        self.world.report.timeouts += 1
        self.world.report_failure(self.target)
        self.world.client.process_on_core(self.core, self._retry)


class HostKillStorm:
    """Build the cluster, storm it, kill a primary, check the contract."""

    def __init__(self, hosts=3, loops=8, puts_per_loop=5, keys_per_loop=2,
                 value_size=1024, ack_policy="sync", seed=1, cores=1,
                 pool_slots=512, kill_delay_ns=200_000.0,
                 failsafe_ns=45 * MILLIS, max_events=20_000_000,
                 config=None):
        if config is None:
            config = ClusterConfig(hosts=hosts, cores=cores,
                                   ack_policy=ack_policy,
                                   pool_slots=pool_slots)
        if not config.metrics:
            raise ValueError(
                "HostKillStorm needs config.metrics=True: the oracles "
                "read the shared recorder's gauges and span chains")
        self.config = config
        self.loops = loops
        self.puts_per_loop = puts_per_loop
        self.keys_per_loop = keys_per_loop
        self.value_size = value_size
        self.seed = seed
        self.kill_delay_ns = kill_delay_ns
        self.failsafe_ns = failsafe_ns
        self.max_events = max_events

        # The kill storm's bursts are the same TrafficSource protocol
        # as every other generator, with cluster-specific key/stamp
        # prefixes so values attribute to the loop that wrote them.
        self.source = StormBurstSource(
            loops, puts_per_loop, keys_per_loop, value_size,
            key_prefix="ck", stamp_prefix="l",
        )

        self.cluster = build_cluster(config)
        self.sim = self.cluster.sim
        self.client = self.cluster.client
        self.router = self.cluster.router
        self.recorder = self.cluster.recorder
        self.metrics = self.cluster.metrics
        self.port = config.port
        self.report = ClusterChaosReport()
        self.phase = "pre"
        self.victim = None
        self._conns = []

    # -- phase / failure plumbing ---------------------------------------------

    def report_failure(self, name):
        """Loop-observed failure; a router-triggered failover flips the
        storm into its post-failover phase."""
        if self.router.report_failure(name):
            self.phase = "post"
            if self.report.failover_by is None:
                self.report.failover_by = "router"

    def _kill_victim(self):
        self.cluster.kill(self.victim)
        self.phase = "kill"

    def _failsafe(self):
        """Detection bound: if the router hasn't evicted the victim by
        now (e.g. the burst drained before two watchdogs expired), the
        control plane's timer does."""
        if self.victim in self.cluster.ring.alive:
            self.cluster.failover(self.victim)
            self.phase = "post"
            if self.report.failover_by is None:
                self.report.failover_by = "failsafe"

    # -- phases ---------------------------------------------------------------

    def _launch(self):
        for loop_id in range(self.loops):
            loop = _ShardLoop(self, loop_id, self.source)
            self._conns.append(loop)
            core = self.client.cpus[loop_id % len(self.client.cpus)]
            self.sim.schedule(
                loop_id * 2_000.0,
                lambda c=loop, co=core: self.client.process_on_core(
                    co, c.start),
            )

    def _pick_victim(self):
        """The primary owning the most loop keys: guaranteed to hold
        acked data, so its death puts the durability claim on trial."""
        owned = {}
        for loop in self._conns:
            for key in loop.keys:
                owned[self.router.primary(key)] = \
                    owned.get(self.router.primary(key), 0) + 1
        self.victim = max(sorted(owned), key=lambda n: owned[n])
        self.report.victim = self.victim
        self._victim_keys = [
            key for loop in self._conns for key in loop.keys
            if self.router.primary(key) == self.victim
        ]

    def _second_burst(self):
        """The post-kill burst: every loop issues the same count again,
        retrying through detection and failover."""
        for loop in self._conns:
            core = self.client.cpus[loop.loop_id % len(self.client.cpus)]
            self.sim.schedule(
                loop.loop_id * 2_000.0,
                lambda c=loop, co=core: self.client.process_on_core(
                    co, lambda ctx: c.resume(self.puts_per_loop, ctx)),
            )
        self.sim.schedule(self.kill_delay_ns, self._kill_victim)
        self.sim.schedule(self.failsafe_ns, self._failsafe)

    def _probe(self):
        """End-to-end read-your-acked-writes: GET a victim-owned key
        over the network from whatever the ring now routes to."""
        probed = None
        for loop in self._conns:
            for key in self._victim_keys:
                if key in loop.last_acked:
                    probed = (key, loop)
                    break
            if probed:
                break
        if probed is None:
            return  # the vacuity oracle flags this separately
        key, loop = probed
        allowed = [loop.last_acked[key]] + loop.issued_after_ack.get(key, [])
        result = {"status": None, "body": None}
        parser = HttpParser(is_response=True)
        ip = self.router.ip_of(self.router.primary(key))

        def on_reply(segments, c):
            for segment in segments:
                for message in parser.feed(segment):
                    result["status"] = message.status
                    result["body"] = message.body
                    message.release()

        self.client.process_on_core(
            self.client.cpus[0],
            lambda ctx: self.client.homa.send_request(
                ip, self.port, build_request("GET", "/" + key.decode()),
                ctx, on_reply=on_reply),
        )
        self.sim.run_until_idle(max_events=self.max_events)
        self.report.probe_ok = (result["status"] == 200
                                and result["body"] in allowed)
        if not self.report.probe_ok:
            self.report.violation(
                "durability:probe",
                f"post-failover GET /{key.decode()} got "
                f"{result['status']!r} — the promoted primary does not "
                f"serve the acked put over the network",
            )

    # -- oracles --------------------------------------------------------------

    def _check_oracles(self):
        report = self.report
        metrics = self.metrics
        self.sim.run(until=self.sim.now + MILLIS)

        # Liveness: no survivor core may be sitting on queued work.
        for node in self.cluster.alive_nodes():
            for index in range(len(node.host.cpus)):
                queued = metrics.value(f"{node.name}.core{index}.queue_ns")
                if queued > 0:
                    report.violation(
                        "liveness:core-queue",
                        f"{node.name} core {index} still has "
                        f"{queued:.0f} ns of queued work after the drain",
                    )
        stalled = sum(1 for c in self._conns
                      if c.in_flight is not None and not c.done)
        if stalled:
            report.violation(
                "liveness:stalled",
                f"{stalled} loop(s) still awaiting a response at idle",
            )

        # Refcount exactness, per survivor: the rx pool and the store
        # agree, and every adopted buffer's refcount equals the
        # references the store holds on it.
        for node in self.cluster.alive_nodes():
            rx_in_use = metrics.value(f"{node.name}.rx_pool.in_use")
            owned = metrics.value(f"{node.name}.engine.store.owned")
            if rx_in_use != owned:
                report.violation(
                    "leak:server-rx",
                    f"{node.name}: rx_pool.in_use = {rx_in_use:.0f} but "
                    f"store.owned = {owned:.0f}",
                )
            store = getattr(node.engine, "store", None)
            if store is None:
                continue
            held = {}
            for refs in store._refs.values():
                for buf in refs:
                    held[buf.slot] = held.get(buf.slot, 0) + 1
            for slot, buf in store._buffers.items():
                expected = held.get(slot, 0)
                if buf.refcount != expected:
                    report.violation(
                        "refcount:buffer",
                        f"{node.name} slot {slot}: refcount "
                        f"{buf.refcount}, store holds {expected}",
                    )

        self._check_span_stitching()
        self._check_durability()
        self._check_vacuity()

    def _check_durability(self):
        """Every acked put is readable from the key's current primary —
        including every key the dead host used to own."""
        for loop in self._conns:
            for key, value in loop.last_acked.items():
                stored = self.cluster.read_value(key)
                allowed = [value] + loop.issued_after_ack.get(key, [])
                if stored not in allowed:
                    got = None if stored is None else bytes(stored[:48])
                    owner = self.router.primary(key)
                    report_kind = ("durability:failover"
                                   if key in self._victim_keys
                                   else "durability")
                    self.report.violation(
                        report_kind,
                        f"key {key!r} (now on {owner}): stored {got!r} "
                        f"is neither the acked value nor a later issued "
                        f"one",
                    )

    def _check_span_stitching(self):
        """One request, one trace — across hosts, kills and retries."""
        report = self.report
        recorder = self.recorder

        # Orphans: any retransmitted direction must have ended in
        # delivery or a terminal give-up (abort_peer covers messages
        # aimed at — or half-received from — the corpse).
        for rpc_id, chain in recorder.chains().items():
            for direction in ("request", "reply"):
                if chain[direction]["retransmits"] == 0:
                    continue
                if direction not in chain["delivered"] and \
                        direction not in chain["gave_up"]:
                    report.violation(
                        "spanlink:orphan",
                        f"rpc {rpc_id} {direction}: "
                        f"{chain[direction]['retransmits']} retransmit(s) "
                        f"but neither delivered nor given up",
                    )

        # Stitching: an acked put outside the detection window had a
        # live backup, so its origin RPC must trace into at least one
        # replication RPC.  (Kill-window acks may legitimately have
        # degraded via the suspect fast-path without a forward.)
        families = 0
        for loop in self._conns:
            for key, rpc_id in loop.acked_rpcs.items():
                stitched = recorder.stitched(rpc_id)
                if len(stitched) > 1:
                    families += 1
                elif loop.acked_phase.get(key) in ("pre", "post") and \
                        len(self.cluster.ring.alive) >= 2:
                    report.violation(
                        "spanlink:unstitched",
                        f"key {key!r}: acked rpc {rpc_id} "
                        f"({loop.acked_phase.get(key)}-phase) has no "
                        f"replication hop in its trace",
                    )
        report.stitched_families = families

        double = self.metrics.value("server.rpc.double_dispatch")
        if double:
            report.violation(
                "spanlink:double-dispatch",
                f"{double:.0f} RPC(s) ran a handler more than once",
            )

    def _check_vacuity(self):
        """A kill storm that killed nothing, detected nothing or acked
        nothing on either side of the cut proves nothing."""
        report = self.report
        report.kills = self.cluster.stats["kills"]
        report.failovers = self.cluster.stats["failovers"]
        if report.attempted_puts == 0:
            report.violation("vacuous:no-requests",
                             "the storm issued zero PUTs")
        if report.kills == 0:
            report.violation("vacuous:no-kill",
                             "no host was ever killed — nothing failed")
        if report.failovers == 0:
            report.violation(
                "vacuous:no-failover",
                "the victim was never evicted — neither the router's "
                "failure detection nor the failsafe fired",
            )
        if report.acked_by_phase["pre"] == 0:
            report.violation(
                "vacuous:no-pre-kill-acks",
                "zero puts were acked before the kill — the victim "
                "died holding nothing worth checking",
            )
        if report.acked_by_phase["post"] == 0:
            report.violation(
                "vacuous:no-post-failover-acks",
                "zero puts were acked after the failover — promotion "
                "was never exercised by live traffic",
            )
        victim_acked = sum(
            1 for loop in self._conns for key in loop.last_acked
            if key in self._victim_keys)
        if victim_acked == 0:
            report.violation(
                "vacuous:victim-untouched",
                f"no acked put landed on a shard {self.victim} owned — "
                f"the kill endangered nothing",
            )

    # -- run ------------------------------------------------------------------

    def run(self):
        self._launch()
        try:
            self.sim.run_until_idle(max_events=self.max_events)
            self._pick_victim()
            self._second_burst()
            self.sim.run_until_idle(max_events=self.max_events)
            self._probe()
        except Exception as exc:  # noqa: BLE001 — a crash IS the finding
            self.report.crashed = exc
            self.report.violation("crash", f"{type(exc).__name__}: {exc}")
            self._finalize()
            return self.report
        self._check_oracles()
        self._finalize()
        return self.report

    def _finalize(self):
        totals = {}
        for node in self.cluster.nodes.values():
            for key, value in node.replicator.stats.items():
                if key.startswith("lag"):
                    continue
                totals[key] = totals.get(key, 0) + value
            totals["applied"] = (totals.get("applied", 0)
                                 + node.applier.stats["applied"])
            totals["dup_suppressed"] = (totals.get("dup_suppressed", 0)
                                        + node.applier.stats["dup_suppressed"])
        self.report.repl_stats = totals
        self.report.degraded_acks = totals.get("degraded_acks", 0)


def run_host_kill_storm(**kwargs):
    """Convenience: build and run one kill storm; returns the report."""
    return HostKillStorm(**kwargs).run()
