"""The exhaustive crash-point sweep.

One recorded run of a workload yields a persistence-event trace and an
op journal.  :class:`CrashSweep` then walks every event boundary and,
at each one, materialises every distinct image a power cut could leave
behind, runs real recovery on it, and applies every oracle:

==========  =============================================================
mode        persistence-domain image at the crash
==========  =============================================================
``clean``   every pending (written-back, unfenced) line dropped — the
            conservative outcome recovery must always tolerate
``drain``   every pending line made it out of the write-pending queue
``torn``    exactly one pending line drained, and all-but-one — the
            boundary cases of a torn multi-line write-back
``reorder`` seeded pseudo-random subsets of pending lines — unordered
            write-pending-queue drain beyond the torn boundary cases
==========  =============================================================

Because per-line drain is independent and last-snapshot-wins, every
physically possible post-crash image is some subset of pending lines
over the fenced image; ``clean``/``drain``/``torn`` cover the subset
lattice's corners and ``reorder`` samples its interior.

A sweep with zero violations is the §5.1 claim made exhaustive: acked
writes always survive, in-flight writes vanish atomically, at **every**
event boundary — not just the schedules a probabilistic test happened
to visit.
"""

import struct

from repro.pm.namespace import NamespaceError
from repro.storage.skiplist import SkipListCorruption, _XorShift

from repro.testing.replay import make_cursor

#: Exception types a recovery may raise for a crash that predates full
#: initialisation (no namespace directory, no store root yet).  After
#: the setup boundary these — like any other exception — are violations.
CLEAN_FAILURES = (
    NamespaceError,
    SkipListCorruption,
    ValueError,
    IndexError,
    KeyError,
    struct.error,
)


class CrashScenario:
    """One (crash point, drain outcome) the sweep is probing."""

    __slots__ = ("event_index", "mode", "drained", "total_events")

    def __init__(self, event_index, mode, drained, total_events):
        self.event_index = event_index
        self.mode = mode
        self.drained = drained
        self.total_events = total_events

    def __repr__(self):
        drain = f" drained={list(self.drained)}" if self.drained else ""
        return (
            f"<crash@{self.event_index}/{self.total_events} "
            f"{self.mode}{drain}>"
        )


class Violation:
    """One oracle failure at one scenario."""

    __slots__ = ("scenario", "oracle", "message")

    def __init__(self, scenario, oracle, message):
        self.scenario = scenario
        self.oracle = oracle
        self.message = message

    def __repr__(self):
        return f"<violation {self.scenario!r} [{self.oracle}] {self.message}>"


class SweepReport:
    """What an exhaustive sweep covered and what it found."""

    def __init__(self, total_events, first_point):
        self.total_events = total_events
        self.first_point = first_point
        self.crash_points = 0
        self.scenarios = 0
        self.recoveries = 0
        self.tolerated_failures = 0
        self.per_mode = {}
        self.violations = []

    def add_violation(self, scenario, oracle, message):
        self.violations.append(Violation(scenario, oracle, message))

    @property
    def ok(self):
        return not self.violations

    def summary(self):
        modes = ", ".join(f"{mode} {count}"
                          for mode, count in sorted(self.per_mode.items()))
        lines = [
            f"crash points: {self.crash_points} "
            f"(events {self.first_point}..{self.first_point + self.crash_points - 1} "
            f"of {self.total_events})",
            f"scenarios: {self.scenarios} ({modes})",
            f"recoveries: {self.recoveries}"
            + (f", tolerated pre-setup failures: {self.tolerated_failures}"
               if self.tolerated_failures else ""),
            f"violations: {len(self.violations)}",
        ]
        for violation in self.violations[:20]:
            lines.append(f"  {violation!r}")
        if len(self.violations) > 20:
            lines.append(f"  … and {len(self.violations) - 20} more")
        return "\n".join(lines)

    def __repr__(self):
        state = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return f"<SweepReport {self.scenarios} scenarios {state}>"


class CrashSweep:
    """Exhaustive crash-point fault injection over one recorded trace.

    Args:
        trace: the :class:`~repro.testing.events.EventTrace` to sweep.
        recover_fn: callable(device) -> recovered world; runs the real
            recovery path against the materialised post-crash device.
        oracles: iterable of :class:`~repro.testing.oracle.Oracle`.
        journal: the workload's :class:`~repro.testing.journal.OpJournal`.
        modes: subset of {"clean", "drain", "torn", "reorder"}.
        torn_cap: max single-line scenarios per crash point (each
            direction), keeping torn sweeps bounded on wide flushes.
        reorder_samples: sampled subsets per crash point in reorder mode.
        max_events: bound the sweep to the first N events (CI smoke).
        include_setup: also crash during world construction; recovery
            may then raise a :data:`CLEAN_FAILURES` exception, which is
            tolerated *before* the setup boundary only.
        drop_fences / drop_flushes: replay-level fault injection — run
            the sweep as if the protocol had no sfence / no clwb.
        seed: seed for reorder-mode subset sampling.
    """

    def __init__(self, trace, recover_fn, oracles, journal,
                 modes=("clean", "drain", "torn"), torn_cap=4,
                 reorder_samples=3, max_events=None, include_setup=False,
                 drop_fences=False, drop_flushes=False, seed=1):
        self.trace = trace
        self.recover_fn = recover_fn
        self.oracles = list(oracles)
        self.journal = journal
        self.modes = frozenset(modes)
        unknown = self.modes - {"clean", "drain", "torn", "reorder"}
        if unknown:
            raise ValueError(f"unknown sweep modes: {sorted(unknown)}")
        self.torn_cap = torn_cap
        self.reorder_samples = reorder_samples
        self.max_events = max_events
        self.include_setup = include_setup
        self.drop_fences = drop_fences
        self.drop_flushes = drop_flushes
        self.seed = seed

    def _scenarios(self, cursor, rng):
        pending = cursor.pending_units()
        seen = set()

        def emit(mode, drained):
            drained = tuple(drained)
            if drained in seen:
                return None
            seen.add(drained)
            return (mode, drained)

        if "clean" in self.modes:
            yield emit("clean", ())
        if pending:
            if "drain" in self.modes:
                scenario = emit("drain", pending)
                if scenario:
                    yield scenario
            if "torn" in self.modes:
                for unit in pending[:self.torn_cap]:
                    scenario = emit("torn", (unit,))
                    if scenario:
                        yield scenario
                if len(pending) > 2:
                    for unit in pending[:self.torn_cap]:
                        scenario = emit(
                            "torn", tuple(u for u in pending if u != unit)
                        )
                        if scenario:
                            yield scenario
            if "reorder" in self.modes and len(pending) > 1:
                for _ in range(self.reorder_samples):
                    subset = tuple(u for u in pending if rng.next() & 1)
                    scenario = emit("reorder", subset)
                    if scenario:
                        yield scenario

    def run(self, progress=None):
        """Sweep every crash point; returns a :class:`SweepReport`."""
        events = self.trace.events
        limit = len(events)
        if self.max_events is not None:
            limit = min(limit, self.max_events)
        first_point = 0 if self.include_setup else self.trace.setup_events
        cursor = make_cursor(self.trace, drop_fences=self.drop_fences,
                             drop_flushes=self.drop_flushes)
        rng = _XorShift(self.seed)
        report = SweepReport(len(events), first_point)

        for k in range(0, limit + 1):
            if k > 0:
                cursor.apply(events[k - 1])
            if k < first_point:
                continue
            report.crash_points += 1
            for item in self._scenarios(cursor, rng):
                if item is None:
                    continue
                mode, drained = item
                scenario = CrashScenario(k, mode, drained, len(events))
                report.scenarios += 1
                report.per_mode[mode] = report.per_mode.get(mode, 0) + 1
                image = cursor.crash_image(drained)
                device = cursor.materialize(image)
                try:
                    recovered = self.recover_fn(device)
                except CLEAN_FAILURES as exc:
                    if k < self.trace.setup_events:
                        report.tolerated_failures += 1
                    else:
                        report.add_violation(
                            scenario, "recovery",
                            f"recovery raised {type(exc).__name__}: {exc}",
                        )
                    continue
                except Exception as exc:  # noqa: BLE001 — report, don't die
                    report.add_violation(
                        scenario, "recovery",
                        f"recovery crashed with {type(exc).__name__}: {exc}",
                    )
                    continue
                report.recoveries += 1
                for oracle in self.oracles:
                    for message in oracle.check(recovered, scenario,
                                                self.journal):
                        report.add_violation(scenario, oracle.name, message)
            if progress is not None:
                progress(k, limit, report)
        return report


def run_until_persistence_events(sim, device, target, until=None,
                                 max_events=None):
    """Drive a live simulation until ``device`` has recorded ``target``
    persistence events, then stop at that sim-event boundary.

    This is the deterministic crash scheduler for integration tests:
    unlike "run for N microseconds", the stop point is pinned to the
    persistence-event sequence, so the same seeds always crash the
    world at the same protocol step.  Returns the device's event count
    at the stop.
    """
    if device.event_count >= target:
        return device.event_count

    def watch(_event):
        if device.event_count >= target:
            sim.stop()

    sim.add_watcher(watch)
    try:
        sim.run(until=until, max_events=max_events)
    finally:
        sim.remove_watcher(watch)
    return device.event_count
