"""Pluggable recovery invariants (the §5.1 contract, checkable).

An oracle inspects one recovered world and returns a list of violation
strings (empty = healthy).  The harness runs every oracle at every
crash scenario; a single surviving violation fails the sweep.

Writing a new oracle is three steps: subclass :class:`Oracle`, give it
a ``name``, and implement ``check(recovered, scenario, journal)``.
``recovered`` is whatever the world's ``recover`` callable returned —
the bundled oracles rely on two informal protocols:

- *mapping protocol*: ``recovered.mapping()`` returns the visible
  ``{key: value}`` dict (used by :class:`KVDurabilityOracle`);
- *packet-store protocol*: ``recovered.store`` / ``.pool`` /
  ``.report`` (used by :class:`PacketStoreStructureOracle`).
"""

from repro.core.ppktbuf import KIND_CONT, KIND_NODE

from repro.testing.journal import ABSENT


class Oracle:
    """Base class: one named recovery invariant."""

    name = "oracle"

    def check(self, recovered, scenario, journal):
        """Return a list of violation messages (empty when satisfied)."""
        raise NotImplementedError

    def __repr__(self):
        return f"<Oracle {self.name}>"


def _show(value):
    if value is ABSENT:
        return "<absent>"
    if len(value) > 24:
        return f"{value[:24]!r}…({len(value)}B)"
    return repr(value)


class KVDurabilityOracle(Oracle):
    """Acked puts present, unacked puts atomically absent, no inventions.

    The §5.1 contract over the journal's expectations: at crash point
    ``k`` every key's recovered value must be one of the allowed
    outcomes (last acked effect, or a whole in-flight effect), and
    recovery must not conjure keys nobody ever wrote.
    """

    name = "kv-durability"

    def check(self, recovered, scenario, journal):
        violations = []
        mapping = recovered.mapping()
        expect = journal.expectations(scenario.event_index)
        for key, allowed in expect.items():
            actual = mapping.get(key, ABSENT)
            if actual not in allowed:
                wanted = " | ".join(sorted(_show(v) for v in allowed))
                violations.append(
                    f"key {key!r}: recovered {_show(actual)}, "
                    f"allowed {{{wanted}}}"
                )
        for key in mapping:
            if key not in expect:
                violations.append(f"key {key!r}: invented by recovery")
        return violations


class PacketStoreStructureOracle(Oracle):
    """Structural health of a recovered :class:`PacketStore`.

    - every reachable record (nodes and continuation chains) is
      CRC-valid,
    - every payload fragment reference lands inside a live pool slot
      (no dangling buffer refs),
    - buffer refcounts equal the number of fragment references the
      store re-took (no leaks, no over-release),
    - the pool's in-use set is exactly the adopted buffer set,
    - the recovery report agrees with the rebuilt store.
    """

    name = "pktstore-structure"

    def check(self, recovered, scenario, journal):
        violations = []
        store = recovered.store
        pool = recovered.pool
        report = recovered.report
        slab = store.slab

        ref_counts = {}
        records = 0
        cursor = slab.read_next(store.head_slot, 0)
        while cursor:
            slot = cursor - 1
            record = slab.valid_record(slot)
            if record is None:
                violations.append(f"record slot {slot}: reachable but CRC-invalid")
                break
            if record.kind != KIND_NODE:
                violations.append(
                    f"record slot {slot}: reachable with kind={record.kind}"
                )
                break
            records += 1
            chain = record
            chain_slot = slot
            while True:
                for buf_slot, off, length in chain.frags:
                    if not 0 <= buf_slot < pool.nslots:
                        violations.append(
                            f"record slot {chain_slot}: frag buffer {buf_slot} "
                            f"outside pool of {pool.nslots} slots"
                        )
                        continue
                    if off + length > pool.slot_size:
                        violations.append(
                            f"record slot {chain_slot}: frag [{off}, {off + length}) "
                            f"overruns {pool.slot_size}B slot {buf_slot}"
                        )
                    if buf_slot not in store._buffers:
                        violations.append(
                            f"record slot {chain_slot}: dangling ref to buffer "
                            f"{buf_slot} (not re-adopted)"
                        )
                    else:
                        ref_counts[buf_slot] = ref_counts.get(buf_slot, 0) + 1
                if not chain.cont:
                    break
                chain_slot = chain.cont - 1
                chain = slab.valid_record(chain_slot)
                if chain is None or chain.kind != KIND_CONT:
                    violations.append(
                        f"record slot {slot}: broken continuation chain at "
                        f"{chain_slot}"
                    )
                    break
            cursor = slab.read_next(slot, 0)

        for buf_slot, expected in ref_counts.items():
            actual = store._buffers[buf_slot].refcount
            if actual != expected:
                violations.append(
                    f"buffer {buf_slot}: refcount {actual}, "
                    f"{expected} reachable references"
                )
        if pool._in_use != set(store._buffers):
            violations.append(
                f"pool in-use set {sorted(pool._in_use)} != adopted buffers "
                f"{sorted(store._buffers)}"
            )
        if report.recovered != records:
            violations.append(
                f"report.recovered={report.recovered} but store holds "
                f"{records} reachable records"
            )
        if report.adopted_buffers != len(store._buffers):
            violations.append(
                f"report.adopted_buffers={report.adopted_buffers} but "
                f"{len(store._buffers)} buffers adopted"
            )
        return violations


class WalPrefixOracle(Oracle):
    """WAL replay yields the acked appends, in order, plus at most a
    whole in-flight tail — never a gap, reorder, or torn record.

    Expects ``recovered.payloads()`` (or a plain list) of replayed
    record payloads.
    """

    name = "wal-prefix"

    def check(self, recovered, scenario, journal):
        payloads = (recovered.payloads()
                    if hasattr(recovered, "payloads") else list(recovered))
        k = scenario.event_index
        committed = [op.value for op in journal.committed(k)]
        started = committed + [op.value for op in journal.in_flight(k)]
        violations = []
        if payloads[:len(committed)] != committed:
            violations.append(
                f"acked prefix broken: replayed {len(payloads)} records, "
                f"first divergence within the {len(committed)} acked appends"
            )
        elif payloads != started[:len(payloads)]:
            violations.append(
                "replayed tail does not match any prefix of attempted appends"
            )
        return violations
