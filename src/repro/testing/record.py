"""Recording devices: drop-in replacements that journal every
persistence event.

:class:`RecordingPMDevice` subclasses :class:`~repro.pm.device.PMDevice`
so every existing component — regions, namespaces, buffer pools, the
packet store, the whole simulated testbed — runs on it unchanged while
the trace accumulates.  :class:`RecordingBlockDevice` does the same for
the disk path (WAL, SSTables, manifest).

The devices behave identically to their parents; recording is purely
additive, so a workload recorded once can be replayed offline against
every crash point without re-running it (:mod:`repro.testing.replay`).
"""

from repro.pm.device import PMDevice
from repro.storage.blockdev import BlockDevice
from repro.sim.context import NULL_CONTEXT

from repro.testing.events import (
    EV_BLK_SYNC,
    EV_BLK_WRITE,
    EV_FENCE,
    EV_FLUSH,
    EV_WRITE,
    EventTrace,
    TRACE_BLOCK,
    TRACE_PM,
)


class RecordingPMDevice(PMDevice):
    """A :class:`PMDevice` that journals write/flush/fence events.

    ``clock`` is an optional zero-argument callable (e.g.
    ``lambda: sim.now``) used to stamp each event with simulated time,
    which lets integration sweeps correlate persistence events with the
    discrete-event schedule.
    """

    def __init__(self, size, clock=None, name="pmem-rec", **kwargs):
        super().__init__(size, name=name, **kwargs)
        self.trace = EventTrace(size, self.tracker.line_size, kind=TRACE_PM)
        self._clock = clock

    def _now(self):
        return self._clock() if self._clock is not None else None

    @property
    def event_count(self):
        """Number of persistence events recorded so far."""
        return len(self.trace)

    def mark_setup_complete(self):
        self.trace.mark_setup_complete()

    def write(self, offset, payload):
        written = super().write(offset, payload)
        self.trace.append(EV_WRITE, offset, bytes(payload), time=self._now())
        return written

    def flush(self, offset, length, ctx=NULL_CONTEXT, category="pm.flush"):
        lines = super().flush(offset, length, ctx, category)
        # A clwb over clean lines is a durability no-op but still a
        # program-order point; record it so crash points land on every
        # boundary the code actually crossed.
        self.trace.append(EV_FLUSH, offset, length=length, time=self._now())
        return lines

    def fence(self, ctx=NULL_CONTEXT, category="pm.flush"):
        drained = super().fence(ctx, category)
        self.trace.append(EV_FENCE, time=self._now())
        return drained


class RecordingBlockDevice(BlockDevice):
    """A :class:`BlockDevice` that journals write/sync events."""

    def __init__(self, size, clock=None, name="ssd-rec", **kwargs):
        super().__init__(size, name=name, **kwargs)
        self.trace = EventTrace(size, self.block_size, kind=TRACE_BLOCK)
        self._clock = clock

    def _now(self):
        return self._clock() if self._clock is not None else None

    @property
    def event_count(self):
        return len(self.trace)

    def mark_setup_complete(self):
        self.trace.mark_setup_complete()

    def write(self, offset, payload, ctx=NULL_CONTEXT, category="blockdev.write"):
        written = super().write(offset, payload, ctx, category)
        self.trace.append(EV_BLK_WRITE, offset, bytes(payload), time=self._now())
        return written

    def sync(self, ctx=NULL_CONTEXT, category="blockdev.sync"):
        drained = super().sync(ctx, category)
        self.trace.append(EV_BLK_SYNC, time=self._now())
        return drained
