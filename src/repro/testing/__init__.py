"""Deterministic crash-point fault injection for the persistence path.

The paper's §5.1 durability claim — acked writes always survive, in-
flight writes vanish atomically — is checked *exhaustively* here, not
probabilistically: record a workload's persistence events once, then
crash at every event boundary, materialise every distinct post-crash
image (clean / drained / torn / reordered write-backs), run real
recovery, and apply pluggable oracles.

Layers (each usable on its own):

- :mod:`~repro.testing.events`   — the persistence-event taxonomy;
- :mod:`~repro.testing.record`   — recording PM / block devices;
- :mod:`~repro.testing.replay`   — offline replay cursors + fault injection;
- :mod:`~repro.testing.journal`  — acked-vs-in-flight op bracketing;
- :mod:`~repro.testing.oracle`   — recovery invariants;
- :mod:`~repro.testing.harness`  — the exhaustive sweep + live-sim scheduler;
- :mod:`~repro.testing.workloads`— ready-made worlds (PacketStore, LSM, WAL);
- :mod:`~repro.testing.cli`      — the ``repro-crashcheck`` entry point.

See docs/CRASH_TESTING.md for the full story.
"""

from repro.testing.events import (
    EV_BLK_SYNC,
    EV_BLK_WRITE,
    EV_FENCE,
    EV_FLUSH,
    EV_WRITE,
    EventTrace,
    PersistenceEvent,
)
from repro.testing.harness import (
    CrashScenario,
    CrashSweep,
    SweepReport,
    Violation,
    run_until_persistence_events,
)
from repro.testing.journal import ABSENT, Op, OpJournal
from repro.testing.oracle import (
    KVDurabilityOracle,
    Oracle,
    PacketStoreStructureOracle,
    WalPrefixOracle,
)
from repro.testing.record import RecordingBlockDevice, RecordingPMDevice
from repro.testing.replay import BlockReplayCursor, PMReplayCursor, make_cursor
from repro.testing.workloads import (
    NoveLSMWorld,
    PacketStoreWorld,
    WalWorld,
    mixed_ops,
    sequential_puts,
)

__all__ = [
    "ABSENT",
    "BlockReplayCursor",
    "CrashScenario",
    "CrashSweep",
    "EV_BLK_SYNC",
    "EV_BLK_WRITE",
    "EV_FENCE",
    "EV_FLUSH",
    "EV_WRITE",
    "EventTrace",
    "KVDurabilityOracle",
    "NoveLSMWorld",
    "Op",
    "OpJournal",
    "Oracle",
    "PMReplayCursor",
    "PacketStoreStructureOracle",
    "PacketStoreWorld",
    "PersistenceEvent",
    "RecordingBlockDevice",
    "RecordingPMDevice",
    "SweepReport",
    "Violation",
    "WalPrefixOracle",
    "WalWorld",
    "make_cursor",
    "mixed_ops",
    "run_until_persistence_events",
    "sequential_puts",
]
