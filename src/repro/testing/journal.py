"""Operation journal: what the application believed at every instant.

The §5.1 durability contract is stated in terms of *acknowledged*
operations: an acked write must survive any crash; an in-flight write
may vanish, but only whole.  To check that contract at an arbitrary
crash point, the harness needs to know — per persistence event — which
operations had returned to the caller and which were mid-protocol.

:class:`OpJournal` records exactly that.  A workload brackets every
mutation::

    op = journal.begin("put", key, value)   # before any device event
    store.put(...)                          # emits persistence events
    journal.commit(op)                      # after the caller saw success

Each bracket captures the device's event counter, so "crash after
event k" classifies every op with no scheduling ambiguity:

- ``commit_event <= k``  — acked before the crash: must be durable,
- ``begin_event  >= k``  — not yet started: must be invisible,
- otherwise              — in flight: may surface whole or not at all.

:meth:`OpJournal.expectations` turns that into per-key *allowed value
sets* the oracles compare recovered state against.
"""

import itertools


class _Absent:
    """Sentinel: the key must not be visible (missing or tombstoned)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<ABSENT>"


ABSENT = _Absent()


class Op:
    """One journalled mutation."""

    __slots__ = ("op_id", "kind", "key", "value", "begin_event", "commit_event")

    def __init__(self, op_id, kind, key, value, begin_event):
        self.op_id = op_id
        self.kind = kind            # "put" | "delete" | anything workload-defined
        self.key = key
        self.value = value
        self.begin_event = begin_event
        self.commit_event = None

    @property
    def effect(self):
        """The visible outcome of this op once applied."""
        return ABSENT if self.kind == "delete" else self.value

    def __repr__(self):
        committed = self.commit_event if self.commit_event is not None else "?"
        return (
            f"<Op#{self.op_id} {self.kind} {self.key!r} "
            f"events ({self.begin_event}, {committed}]>"
        )


class OpJournal:
    """Sequential operation journal tied to a device event counter.

    ``event_counter`` is a zero-argument callable returning the number
    of persistence events recorded so far (e.g.
    ``lambda: device.event_count``).
    """

    def __init__(self, event_counter):
        self._counter = event_counter
        self._ids = itertools.count()
        self.ops = []

    def begin(self, kind, key, value=None):
        op = Op(next(self._ids), kind, key, value, self._counter())
        self.ops.append(op)
        return op

    def commit(self, op):
        if op.commit_event is not None:
            raise RuntimeError(f"{op!r} committed twice")
        op.commit_event = self._counter()
        return op

    def keys(self):
        return {op.key for op in self.ops}

    def committed(self, k):
        """Ops acked at crash point ``k`` (all their events applied)."""
        return [op for op in self.ops
                if op.commit_event is not None and op.commit_event <= k]

    def in_flight(self, k):
        """Ops begun but not acked at crash point ``k``."""
        return [op for op in self.ops
                if op.begin_event < k
                and (op.commit_event is None or op.commit_event > k)]

    def expectations(self, k):
        """key -> set of allowed recovered values at crash point ``k``.

        Values are bytes (a put that may/must be visible) or
        :data:`ABSENT`.  Keys no op ever touched before ``k`` map to
        ``{ABSENT}``: recovery inventing them is a violation.
        """
        base = {}
        optional = {}
        for op in self.ops:
            if op.commit_event is not None and op.commit_event <= k:
                # Acked: its effect is the new definite state, and any
                # earlier optional outcomes for the key are superseded.
                base[op.key] = op.effect
                optional.pop(op.key, None)
            elif op.begin_event < k:
                # In flight: its effect may or may not have committed.
                optional.setdefault(op.key, set()).add(op.effect)
        expect = {}
        for key in self.keys():
            allowed = {base.get(key, ABSENT)}
            allowed.update(optional.get(key, ()))
            expect[key] = allowed
        return expect

    def __len__(self):
        return len(self.ops)

    def __repr__(self):
        done = sum(1 for op in self.ops if op.commit_event is not None)
        return f"<OpJournal {done}/{len(self.ops)} ops committed>"
