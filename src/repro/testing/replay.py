"""Offline replay of a persistence-event trace to any crash point.

A :class:`PMReplayCursor` re-executes the exact cache-line semantics of
:class:`~repro.pm.cache.FlushTracker` event by event: stores dirty
lines, ``flush`` snapshots dirty lines into the write-pending queue,
``fence`` drains the queue into the persistent image.  At any point the
cursor can produce the set of images a power cut could leave behind:

- the conservative image (every pending line lost),
- the full-drain image (every pending line made it), and
- any *subset* of pending lines drained — torn/reordered write-backs,
  which real write-pending queues produce because drains are unordered.

Replaying incrementally makes an exhaustive sweep O(events) in replay
work plus one image copy per crash scenario, instead of re-running the
workload once per crash point.

Fault injection happens here too: ``drop_fences=True`` replays the same
trace as if the protocol's ``sfence`` calls were deleted,
``drop_flushes=True`` as if the ``clwb`` calls were — the two classic
PM bugs the literature keeps finding.  A correct sweep turns red under
either, which is how the framework proves it can actually detect
protocol breakage.
"""

from repro.pm.constants import CACHE_LINE
from repro.pm.device import PMDevice
from repro.storage.blockdev import BLOCK_SIZE, BlockDevice

from repro.testing.events import (
    EV_BLK_SYNC,
    EV_BLK_WRITE,
    EV_FENCE,
    EV_FLUSH,
    EV_WRITE,
    TRACE_BLOCK,
    TRACE_PM,
)


class PMReplayCursor:
    """Incremental replay of a PM trace with FlushTracker semantics."""

    def __init__(self, size, line_size=CACHE_LINE, drop_fences=False,
                 drop_flushes=False):
        self.size = size
        self.line_size = line_size
        self.drop_fences = drop_fences
        self.drop_flushes = drop_flushes
        self.data = bytearray(size)
        self.persisted = bytearray(size)
        self.dirty = set()
        self.pending = {}
        self.applied = 0

    def _lines_for(self, offset, length):
        if length <= 0:
            return range(0)
        first = offset // self.line_size
        last = (offset + length - 1) // self.line_size
        return range(first, last + 1)

    def apply(self, event):
        """Replay one event (must be called in trace order)."""
        if event.kind == EV_WRITE:
            payload = event.payload
            self.data[event.offset:event.offset + len(payload)] = payload
            self.dirty.update(self._lines_for(event.offset, len(payload)))
        elif event.kind == EV_FLUSH:
            if not self.drop_flushes:
                for line in self._lines_for(event.offset, event.length):
                    if line in self.dirty:
                        start = line * self.line_size
                        self.pending[line] = bytes(
                            self.data[start:start + self.line_size]
                        )
                        self.dirty.discard(line)
        elif event.kind == EV_FENCE:
            if not self.drop_fences:
                for line, snapshot in self.pending.items():
                    start = line * self.line_size
                    self.persisted[start:start + len(snapshot)] = snapshot
                self.pending.clear()
        else:
            raise ValueError(f"PM cursor cannot replay {event.kind!r}")
        self.applied += 1

    def pending_units(self):
        """Sorted pending line indices (the in-limbo set at a crash)."""
        return sorted(self.pending)

    def crash_image(self, drained=()):
        """The persistence-domain bytes if ``drained`` pending lines
        made it out of the write-pending queue and the rest did not."""
        image = bytearray(self.persisted)
        for line in drained:
            snapshot = self.pending[line]
            start = line * self.line_size
            image[start:start + len(snapshot)] = snapshot
        return image

    def materialize(self, image):
        """A fresh post-crash :class:`PMDevice` holding ``image``."""
        device = PMDevice(self.size, name="pmem-crashed")
        device.persisted = bytearray(image)
        device.data = bytearray(image)
        device.crashes = 1
        return device


class BlockReplayCursor:
    """Incremental replay of a block-device trace.

    Pending units are unsynced blocks; a crash persists an arbitrary
    subset of them (torn multi-block writes), which is exactly the
    failure a WAL's per-record CRC must turn into a clean prefix.
    """

    def __init__(self, size, block_size=BLOCK_SIZE, drop_syncs=False):
        self.size = size
        self.block_size = block_size
        self.drop_syncs = drop_syncs
        self.data = bytearray(size)
        self.durable = bytearray(size)
        self.unsynced = set()
        self.applied = 0

    def _blocks_for(self, offset, length):
        if length <= 0:
            return range(0)
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        return range(first, last + 1)

    def apply(self, event):
        if event.kind == EV_BLK_WRITE:
            payload = event.payload
            self.data[event.offset:event.offset + len(payload)] = payload
            self.unsynced.update(self._blocks_for(event.offset, len(payload)))
        elif event.kind == EV_BLK_SYNC:
            if not self.drop_syncs:
                for block in self.unsynced:
                    start = block * self.block_size
                    self.durable[start:start + self.block_size] = \
                        self.data[start:start + self.block_size]
                self.unsynced.clear()
        else:
            raise ValueError(f"block cursor cannot replay {event.kind!r}")
        self.applied += 1

    def pending_units(self):
        return sorted(self.unsynced)

    def crash_image(self, drained=()):
        image = bytearray(self.durable)
        for block in drained:
            start = block * self.block_size
            image[start:start + self.block_size] = \
                self.data[start:start + self.block_size]
        return image

    def materialize(self, image):
        device = BlockDevice(self.size, block_size=self.block_size,
                             name="ssd-crashed")
        device.durable = bytearray(image)
        device.data = bytearray(image)
        return device


def make_cursor(trace, drop_fences=False, drop_flushes=False):
    """The right cursor for a trace's device kind."""
    if trace.kind == TRACE_PM:
        return PMReplayCursor(trace.device_size, trace.unit_size,
                              drop_fences=drop_fences,
                              drop_flushes=drop_flushes)
    if trace.kind == TRACE_BLOCK:
        return BlockReplayCursor(trace.device_size, trace.unit_size,
                                 drop_syncs=drop_fences)
    raise ValueError(f"unknown trace kind {trace.kind!r}")
