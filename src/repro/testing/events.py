"""Persistence-event taxonomy for crash-point fault injection.

Every durability-relevant device operation is one numbered event in an
:class:`EventTrace`.  The taxonomy mirrors what real PM/SSD hardware
distinguishes:

==============  ============================================================
kind            meaning
==============  ============================================================
``write``       store into the CPU-visible view; its cache lines become
                dirty (lost on crash until written back *and* fenced)
``flush``       ``clwb``/``clflushopt`` — snapshot the covered dirty lines
                into the write-pending queue (in limbo on crash)
``fence``       ``sfence`` — drain every pending line into the
                persistence domain (the only durability point)
``blk.write``   block-device write into the volatile device cache
``blk.sync``    ``fsync``/``fdatasync`` — the block-device durability point
==============  ============================================================

A *crash point* is a boundary between two events: "crash after event
k" means events ``1..k`` executed and nothing after.  What the
persistence domain holds at that boundary is not a single image —
pending (written-back, unfenced) lines may drain in any subset — which
is what the harness's ``clean``/``drain``/``torn``/``reorder`` modes
enumerate (:mod:`repro.testing.harness`).
"""

EV_WRITE = "write"
EV_FLUSH = "flush"
EV_FENCE = "fence"
EV_BLK_WRITE = "blk.write"
EV_BLK_SYNC = "blk.sync"

#: Trace kinds: which replay cursor understands the trace.
TRACE_PM = "pm"
TRACE_BLOCK = "block"


class PersistenceEvent:
    """One numbered durability-relevant device operation."""

    __slots__ = ("index", "kind", "offset", "payload", "length", "time")

    def __init__(self, index, kind, offset=0, payload=None, length=0, time=None):
        self.index = index          # 1-based position in the trace
        self.kind = kind
        self.offset = offset
        self.payload = payload      # bytes for write kinds, else None
        self.length = length        # byte length for flush kinds
        self.time = time            # simulated ns when recorded, if known

    def __repr__(self):
        if self.payload is not None:
            span = f"[{self.offset}, {self.offset + len(self.payload)})"
        elif self.length:
            span = f"[{self.offset}, {self.offset + self.length})"
        else:
            span = ""
        return f"<ev#{self.index} {self.kind}{span}>"


class EventTrace:
    """Ordered record of every persistence event a device saw.

    ``setup_events`` marks the boundary between world construction
    (formatting the namespace, writing store roots) and the workload
    proper; sweeps start there by default, and crash points before it
    may legitimately recover to "device not initialised".
    """

    def __init__(self, device_size, unit_size, kind=TRACE_PM):
        self.device_size = device_size
        #: Persistence granularity: cache-line size for PM traces,
        #: block size for block-device traces.
        self.unit_size = unit_size
        self.kind = kind
        self.events = []
        self.setup_events = 0

    def append(self, kind, offset=0, payload=None, length=0, time=None):
        event = PersistenceEvent(
            len(self.events) + 1, kind, offset, payload, length, time
        )
        self.events.append(event)
        return event

    def mark_setup_complete(self):
        """Everything recorded so far was construction, not workload."""
        self.setup_events = len(self.events)

    def counts(self):
        """Event-kind histogram, for reports."""
        histogram = {}
        for event in self.events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self):
        return (
            f"<EventTrace {len(self.events)} events "
            f"({self.setup_events} setup) over {self.device_size}B>"
        )
