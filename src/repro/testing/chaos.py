"""Overload chaos world: does the server survive the traffic it measures?

The crash sweep (:mod:`repro.testing.harness`) proves the *persistence*
path honest; this module does the same for the *serving* path.  It
drives a deliberately under-provisioned testbed — a PM packet pool and
metadata slab sized to exhaust under a many-connection PUT burst —
through pool-exhaustion bursts, fabric loss/duplication storms and
slow-client stalls, then checks the §4 coupling's failure-containment
contract:

- **liveness** — the server answers every surviving connection and a
  post-storm probe; overload surfaces as 503/507 responses, never as an
  exception unwinding the TCP receive path;
- **durability** — every acked PUT's value is still readable after the
  storm (the newest acked, or a later issued, version per key);
- **no leaks** — after the storm drains, tx pools are empty, every
  in-use rx slot is owned by the store, and each adopted buffer's
  refcount equals the references the store actually holds.

Running the same storm with ``contain=False`` (no overload controller,
``contain_errors=False``) must *fail* — the sweep records the crash or
stall as a violation.  That negative check wires into CI via
``repro-chaoscheck --no-containment --expect-violations``, proving the
detector detects.
"""

import random

from repro.bench.testbed import SERVER_IP, make_testbed
from repro.bench.workloads import StormBurstSource
from repro.net.fabric import LinkFaults
from repro.net.http import HttpParser, build_request
from repro.sim.units import MILLIS
from repro.storage.server import ServerConfig

PORT = 80

#: Slot size of the host pools (mirrors Host's default).
SLOT = 2048


class ChaosReport:
    """Outcome of one overload storm."""

    def __init__(self):
        self.violations = []
        self.responses = {200: 0, 503: 0, 507: 0, 400: 0, 404: 0}
        self.resets = 0
        self.stall_aborts = 0
        self.timeouts = 0
        self.crashed = None
        self.acked_puts = 0
        self.attempted_puts = 0
        #: (rpc, direction) pairs that retransmitted at least once —
        #: how much the span-link oracle actually exercised (homa only).
        self.retransmitted_rpcs = 0
        self.probe_ok = False
        self.server_stats = {}
        self.overload_stats = {}

    @property
    def ok(self):
        return not self.violations

    def violation(self, kind, detail):
        self.violations.append((kind, detail))

    def summary(self):
        lines = [
            f"[chaos] puts acked {self.acked_puts}/{self.attempted_puts}, "
            f"responses {dict(self.responses)}, resets {self.resets}, "
            f"timeouts {self.timeouts}",
        ]
        if self.retransmitted_rpcs:
            lines.append(
                f"[chaos] span links: {self.retransmitted_rpcs} "
                f"message(s) retransmitted, all chains resolved"
            )
        if self.server_stats:
            keys = ("shed", "contained_errors", "degraded_gets",
                    "dropped_responses", "parse_errors")
            lines.append("[chaos] server: " + ", ".join(
                f"{k} {self.server_stats.get(k, 0)}" for k in keys))
        if self.overload_stats:
            lines.append("[chaos] overload: " + ", ".join(
                f"{k} {v}" for k, v in sorted(self.overload_stats.items())))
        if self.crashed is not None:
            lines.append(f"[chaos] CRASH: {self.crashed!r}")
        if self.violations:
            lines.append(f"[chaos] {len(self.violations)} violation(s):")
            for kind, detail in self.violations[:10]:
                lines.append(f"[chaos]   {kind}: {detail}")
            if len(self.violations) > 10:
                lines.append(f"[chaos]   ... {len(self.violations) - 10} more")
        else:
            lines.append("[chaos] contract held: live, durable, leak-free")
        return "\n".join(lines)


class _BurstConn:
    """One closed-loop connection: PUT burst over a small private key set.

    ``puts > len(keys)`` forces overwrites, giving the emergency GC
    superseded versions to reclaim mid-storm.  Tracks, per key, the
    latest acked value and everything issued after it — the durability
    oracle accepts any of those (an unacked write may legally persist).
    """

    def __init__(self, world, conn_id, source):
        self.world = world
        self.conn_id = conn_id
        self.source = source
        keys_for = getattr(source, "keys_for", None)
        self.keys = [key.encode() for key in keys_for(conn_id)] \
            if keys_for is not None else []
        self.sent = 0
        self.parser = HttpParser(is_response=True)
        self.sock = None
        self.done = False
        self.last_acked = {}    # key -> value of newest acked put
        self.in_flight = None   # (key, value) awaiting its response
        self.issued_after_ack = {}  # key -> [values issued after last ack]

    def start(self, ctx):
        self.sock = self.world.client.stack.connect(SERVER_IP, PORT, ctx)
        self.sock.on_data = self._on_data
        self.sock.on_established = lambda s, c: self._next(c)
        self.sock.on_reset = self._on_reset

    def _on_reset(self, _sock):
        self.world.report.resets += 1
        self.done = True
        self.parser.reset()

    def _next(self, ctx):
        op = self.source.next_op(self.conn_id)
        if op is None:
            self.done = True
            self.sock.close(ctx)
            return
        method, key_str, value = op
        key = key_str.encode()
        self.in_flight = (key, value)
        self.issued_after_ack.setdefault(key, []).append(value)
        self.sent += 1
        self.world.report.attempted_puts += 1
        self.sock.send(build_request(method, "/" + key_str, value), ctx)

    def _on_data(self, _sock, segment, ctx):
        for message in self.parser.feed(segment):
            status = message.status
            message.release()
            self.world.report.responses[status] = \
                self.world.report.responses.get(status, 0) + 1
            if self.in_flight is not None and status == 200:
                key, value = self.in_flight
                self.last_acked[key] = value
                self.issued_after_ack[key] = []
                self.world.report.acked_puts += 1
            self.in_flight = None
            if self.done:
                return
            self._next(ctx)


class _StallConn:
    """A slow client: sends half a PUT, stalls, then resets.

    The half-request's body slices sit retained in the server's parser;
    the RST must release them (connection-level resilience) or the
    stall permanently pins pool slots.
    """

    def __init__(self, world, conn_id, value_size, stall_ns):
        self.world = world
        self.conn_id = conn_id
        self.value_size = value_size
        self.stall_ns = stall_ns
        self.sock = None

    def start(self, ctx):
        self.sock = self.world.client.stack.connect(SERVER_IP, PORT, ctx)
        self.sock.on_established = self._send_half

    def _send_half(self, sock, ctx):
        request = build_request(
            "PUT", f"/stall-{self.conn_id}", bytes(self.value_size)
        )
        sock.send(request[:len(request) // 2], ctx)
        self.world.sim.schedule(self.stall_ns, self._abort)

    def _abort(self):
        if self.sock.state.value != "CLOSED":
            self.world.report.stall_aborts += 1
            self.world.client.process_on_core(
                self.sock.core, lambda ctx: self.sock.abort(ctx)
            )


class _HomaBurstLoop:
    """One closed-loop Homa requester: the same PUT burst as message RPCs.

    Homa has no connections, so there is no stream to half-send and
    stall — the TCP storm's stall clients have no analog here; the
    fault squall instead lands on DATA/GRANT/ACK packets and exercises
    the transport's sender-timeout retransmission.  A watchdog bounds
    each RPC: if neither a reply nor the transport's give-up resolves
    it, the loop counts a timeout and moves on, the way a real RPC
    client would.
    """

    WATCHDOG_NS = 80 * MILLIS

    def __init__(self, world, conn_id, source):
        self.world = world
        self.conn_id = conn_id
        # The same TrafficSource as the TCP burst, so the durability
        # oracle's bookkeeping is transport-independent.
        self.source = source
        keys_for = getattr(source, "keys_for", None)
        self.keys = [key.encode() for key in keys_for(conn_id)] \
            if keys_for is not None else []
        self.sent = 0
        self.done = False
        self.last_acked = {}        # key -> value of newest acked put
        self.in_flight = None       # (key, value) awaiting its reply
        self.issued_after_ack = {}  # key -> [values issued after last ack]
        self.awaiting = None        # seq of the outstanding RPC
        self.core = None

    def start(self, ctx):
        cpus = self.world.client.cpus
        self.core = cpus[self.conn_id % len(cpus)]
        self._next(ctx)

    def _next(self, ctx):
        op = self.source.next_op(self.conn_id)
        if op is None:
            self.done = True
            return
        method, key_str, value = op
        key = key_str.encode()
        self.in_flight = (key, value)
        self.issued_after_ack.setdefault(key, []).append(value)
        seq = self.sent
        self.sent += 1
        self.world.report.attempted_puts += 1
        self.awaiting = seq
        self.world.client.homa.send_request(
            SERVER_IP, PORT, build_request(method, "/" + key_str, value),
            ctx,
            on_reply=lambda segments, c, s=seq: self._on_reply(s, segments, c),
        )
        self.world.sim.schedule(self.WATCHDOG_NS, self._watchdog, seq)

    def _on_reply(self, seq, segments, ctx):
        if self.awaiting != seq:
            return  # the watchdog already moved on; late duplicate
        self.awaiting = None
        parser = HttpParser(is_response=True)
        status = None
        for segment in segments:
            for message in parser.feed(segment):
                status = message.status
                message.release()
        parser.reset()
        if status is not None:
            self.world.report.responses[status] = \
                self.world.report.responses.get(status, 0) + 1
            if self.in_flight is not None and status == 200:
                key, value = self.in_flight
                self.last_acked[key] = value
                self.issued_after_ack[key] = []
                self.world.report.acked_puts += 1
        self.in_flight = None
        if not self.done:
            self._next(ctx)

    def _watchdog(self, seq):
        if self.awaiting != seq:
            return
        self.awaiting = None
        self.in_flight = None
        self.world.report.timeouts += 1
        if not self.done:
            self.world.client.process_on_core(self.core, self._next)


class OverloadStorm:
    """Build the under-provisioned testbed and run the storm."""

    def __init__(self, connections=100, puts_per_conn=6, keys_per_conn=2,
                 value_size=1400, pool_slots=256, slab_slots=None,
                 contain=True, zero_copy=False, stalls=4,
                 storm_faults=True, seed=1, max_events=20_000_000,
                 reaper_idle_ns=None, transport="tcp", cores=1, config=None,
                 source=None):
        self.connections = connections
        self.puts_per_conn = puts_per_conn
        self.keys_per_conn = keys_per_conn
        self.value_size = value_size
        # The storm's burst phase is a TrafficSource like any other
        # generator; passing one in substitutes the traffic (e.g. a
        # captured stream) while the oracles stay unchanged.
        self.source = source if source is not None else StormBurstSource(
            connections, puts_per_conn, keys_per_conn, value_size,
        )
        self.pool_slots = pool_slots
        # Default slab sizing: enough for steady state (live keys) but
        # well short of the versions the burst creates, so the slab —
        # not just the pool — sees pressure.
        if slab_slots is None:
            slab_slots = max(64, connections * keys_per_conn * 2)
        self.slab_slots = slab_slots
        self.stalls = stalls
        self.storm_faults = storm_faults
        self.seed = seed
        self.max_events = max_events

        # One ServerConfig shapes the whole server side; the individual
        # kwargs are folded into one (and metrics are always on — the
        # oracles read the gauges).
        if config is None:
            config = ServerConfig(
                transport=transport,
                engine="pktstore",
                cores=cores,
                zero_copy_get=zero_copy,
                contain_errors=contain,
                overload=True if contain else None,
                reaper_idle_ns=(reaper_idle_ns if transport == "tcp"
                                else None),
                metrics=True,
                engine_kwargs={"meta_bytes": slab_slots * 256},
            )
        if not config.metrics:
            raise ValueError(
                "OverloadStorm needs config.metrics=True: the liveness "
                "and leak oracles read the recorder's gauges"
            )
        self.config = config
        self.transport = config.transport
        self.contain = config.contain_errors
        self.zero_copy = config.zero_copy_get

        self.testbed = make_testbed(
            config=config,
            paste_pool_bytes=pool_slots * SLOT,
        )
        self.overload = self.testbed.overload
        self.metrics = self.testbed.metrics
        self.sim = self.testbed.sim
        self.client = self.testbed.client
        self.server = self.testbed.server
        if self.transport == "homa":
            self.client.enable_homa()
        self.report = ChaosReport()
        self._rng = random.Random(seed)

    # -- baseline / oracle ----------------------------------------------------

    def _capture_baseline(self):
        metrics = self.metrics
        self.baseline = {
            "server_tx": metrics.value("server.tx_pool.in_use"),
            "client_tx": metrics.value("client.tx_pool.in_use"),
            "client_rx": metrics.value("client.rx_pool.in_use"),
        }

    def _check_oracles(self):
        """Liveness and leak checks against the recorder's gauges.

        The pool/store comparisons read the live metrics registry — the
        same numbers an operator would see from ``repro-stats`` — so the
        oracles hold for any transport and any core count without
        knowing server internals.  Only the refcount-*exact* oracle
        still walks the store's tables: per-slot expected-vs-actual
        refcounts are deliberately finer than any gauge.
        """
        report = self.report
        metrics = self.metrics
        store = self.testbed.engine.store

        # Settle: run_until_idle leaves the clock at the last *event*,
        # which can precede the end of the last core slice by a few µs;
        # advancing past it makes queue_ns a true stuck-work detector.
        self.sim.run(until=self.sim.now + MILLIS)

        # Liveness: at drain, no server core may still have queued work.
        for index in range(len(self.server.cpus)):
            queued = metrics.value(f"server.core{index}.queue_ns")
            if queued > 0:
                report.violation(
                    "liveness:core-queue",
                    f"server core {index} still has {queued:.0f} ns of "
                    f"queued work after the storm drained",
                )

        # Leak oracles: after the storm drains, transient users of every
        # pool are gone; only the store legitimately holds rx slots.
        for gauge_name, base_key, kind in (
            ("server.tx_pool.in_use", "server_tx", "leak:server-tx"),
            ("client.tx_pool.in_use", "client_tx", "leak:client-tx"),
            ("client.rx_pool.in_use", "client_rx", "leak:client-rx"),
        ):
            in_use = metrics.value(gauge_name)
            if in_use != self.baseline[base_key]:
                report.violation(
                    kind,
                    f"{gauge_name} = {in_use:.0f} "
                    f"(baseline {self.baseline[base_key]:.0f})",
                )
        rx_in_use = metrics.value("server.rx_pool.in_use")
        store_owned = metrics.value("engine.store.owned")
        if rx_in_use != store_owned:
            # Internals only for the diagnostic detail, not the verdict.
            stray = sorted(set(store.pool._in_use) - set(store._buffers))
            missing = sorted(set(store._buffers) - set(store.pool._in_use))
            report.violation(
                "leak:server-rx",
                f"server.rx_pool.in_use = {rx_in_use:.0f} but "
                f"engine.store.owned = {store_owned:.0f} "
                f"(stray {stray[:8]}, freed-but-referenced {missing[:8]})",
            )

        # Refcount oracle: each adopted buffer's refcount equals the
        # references the store holds on it — nothing else may be
        # pinning storage buffers once traffic has drained.
        held = {}
        for refs in store._refs.values():
            for buf in refs:
                held[buf.slot] = held.get(buf.slot, 0) + 1
        for slot, buf in store._buffers.items():
            expected = held.get(slot, 0)
            if buf.refcount != expected:
                report.violation(
                    "refcount:buffer",
                    f"slot {slot}: refcount {buf.refcount}, store holds "
                    f"{expected}",
                )

        if self.transport == "homa":
            self._check_span_links()

        # Durability oracle: the newest acked value (or a later issued
        # one) per key is what the store serves.
        for conn in self._conns:
            for key, value in conn.last_acked.items():
                stored = self.testbed.engine.get(key)
                allowed = [value] + conn.issued_after_ack.get(key, [])
                if stored not in allowed:
                    got = None if stored is None else stored[:48]
                    report.violation(
                        "durability",
                        f"key {key!r}: stored {got!r} is neither the "
                        f"acked value nor a later issued one",
                    )

    def _check_span_links(self):
        """Span-link oracle (Homa): every retransmitted RPC resolves.

        The recorder threads one chain per RPC id through the trace
        ring (see :mod:`repro.obs.trace`).  After the storm drains,
        each direction that retransmitted must have ended in delivery
        or an explicit give-up — a chain that did neither is an orphan:
        retransmit spans dangling with no terminal span.  And no
        logical request may have run the handler twice — that would
        double-count its stages in the live Table-1 totals (the
        transport's completed-RPC dedup exists exactly to prevent it).
        """
        report = self.report
        recorder = self.testbed.recorder
        retransmitted = 0
        for rpc_id, chain in recorder.chains().items():
            for direction in ("request", "reply"):
                side = chain[direction]
                if side["retransmits"] == 0:
                    continue
                retransmitted += 1
                if direction not in chain["delivered"] and \
                        direction not in chain["gave_up"]:
                    report.violation(
                        "spanlink:orphan",
                        f"rpc {rpc_id} {direction}: "
                        f"{side['retransmits']} retransmit(s) but the "
                        f"message was neither delivered nor given up",
                    )
        # Vacuity is recorded, not a violation: whether the squall
        # forced retransmits depends on seed and sizing, and a quiet
        # storm still proves liveness/durability.  The dedicated
        # span-link test asserts retransmitted_rpcs > 0 on a seed that
        # does storm.
        report.retransmitted_rpcs = retransmitted
        double = self.metrics.value("server.rpc.double_dispatch")
        if double:
            report.violation(
                "spanlink:double-dispatch",
                f"{double:.0f} RPC(s) ran the handler more than once — "
                f"their stage costs are double-counted in Table 1",
            )

    def _check_vacuity(self):
        """A storm that stressed nothing proves nothing — fail loudly.

        A quiet pass is worse than a failure: the oracles all "hold"
        while the code under test never ran.  Three ways a storm can go
        vacuous, each a configuration bug, not a server bug: the burst
        issued zero requests, the fault squall was requested but never
        touched a frame, or the stall clients were requested but none
        ever reset.  (Retransmit vacuity stays advisory — see
        :meth:`_check_span_links` — because whether the squall forces a
        retransmit is legitimately seed-dependent; whether it drops any
        frame at all, across a multi-thousand-frame storm, is not.)
        """
        report = self.report
        if report.attempted_puts == 0:
            report.violation(
                "vacuous:no-requests",
                "the storm phase issued zero PUTs — nothing was tested",
            )
        if self.storm_faults and self._faults is not None:
            faults = self._faults
            observed = (faults.dropped + faults.duplicated +
                        faults.corrupted + faults.reordered)
            if observed == 0:
                report.violation(
                    "vacuous:no-faults",
                    "a fault squall was requested but zero frames were "
                    "dropped/duplicated/corrupted/reordered — the storm "
                    "finished before the squall window or traffic never "
                    "crossed the fabric",
                )
        expected_stalls = 0 if self.transport == "homa" else self.stalls
        if expected_stalls and report.stall_aborts == 0:
            report.violation(
                "vacuous:no-stalls",
                f"{expected_stalls} stall client(s) requested but none "
                f"ever aborted mid-request — the slow-client phase "
                f"never ran",
            )

    # -- phases ---------------------------------------------------------------

    def _launch(self):
        self._conns = []
        loop_class = _HomaBurstLoop if self.transport == "homa" else _BurstConn
        for conn_id in range(self.connections):
            conn = loop_class(self, conn_id, self.source)
            self._conns.append(conn)
            core = self.client.cpus[conn_id % len(self.client.cpus)]
            # Stagger connection setup so the SYN flood itself doesn't
            # serialise into one processing slice.
            self.sim.schedule(
                conn_id * 2_000.0,
                lambda c=conn, co=core: self.client.process_on_core(
                    co, c.start
                ),
            )
        # Stall clients are a TCP stream phenomenon (half a request
        # parked in the server's parser); Homa messages are atomic, so
        # the storm skips them there.
        stalls = 0 if self.transport == "homa" else self.stalls
        for stall_id in range(stalls):
            # Abort after the fault squall clears (60 ms): a RST is never
            # retransmitted, so one lost to the squall would leave the
            # server connection half-open with the partial request pinned
            # — a TCP property, not a containment bug.  The server-side
            # idle reaper (NetworkStack.enable_idle_reaper, opt in via
            # reaper_idle_ns=) bounds that pin to the idle timeout.
            stall = _StallConn(self, stall_id, self.value_size,
                               stall_ns=70 * MILLIS)
            core = self.client.cpus[stall_id % len(self.client.cpus)]
            self.sim.schedule(
                1_000.0 + stall_id * 3_000.0,
                lambda s=stall, co=core: self.client.process_on_core(
                    co, s.start
                ),
            )
        self._faults = None
        if self.storm_faults:
            # A loss+duplication squall mid-burst; clears before drain.
            # Keep the handle: the vacuity oracle reads its counters.
            # Opens at 0.5 ms — fast multi-core configs drain their PUT
            # burst within a few ms, and a squall that opens after the
            # last data frame is vacuous (the guard that now fails such
            # a run is what caught the old 5 ms open being exactly that
            # for the CI smoke sizings).
            self._faults = LinkFaults(random.Random(self.seed), loss=0.02,
                                      duplicate=0.02)
            self.sim.schedule(MILLIS / 2, self._set_faults, self._faults)
            self.sim.schedule(60 * MILLIS, self._set_faults, None)

    def _set_faults(self, faults):
        self.testbed.fabric.faults = faults

    def _probe(self):
        """Post-storm liveness: a fresh request must get an answer."""
        probe_key = next(
            (conn.keys[0] for conn in self._conns if conn.keys), b"probe"
        )
        result = {"status": None}
        parser = HttpParser(is_response=True)
        request = build_request("GET", "/" + probe_key.decode())

        def start_tcp(ctx):
            sock = self.client.stack.connect(SERVER_IP, PORT, ctx)

            def on_data(s, segment, c):
                for message in parser.feed(segment):
                    result["status"] = message.status
                    message.release()
                    s.close(c)

            sock.on_data = on_data
            sock.on_established = lambda s, c: s.send(request, c)

        def start_homa(ctx):
            def on_reply(segments, c):
                for segment in segments:
                    for message in parser.feed(segment):
                        result["status"] = message.status
                        message.release()

            self.client.homa.send_request(SERVER_IP, PORT, request, ctx,
                                          on_reply=on_reply)

        start = start_homa if self.transport == "homa" else start_tcp
        self.client.process_on_core(self.client.cpus[0], start)
        self.sim.run_until_idle(max_events=self.max_events)
        self.report.probe_ok = result["status"] in (200, 404, 503)
        if not self.report.probe_ok:
            self.report.violation(
                "liveness:probe",
                f"post-storm GET got {result['status']!r} "
                "(expected 200/404/503)",
            )

    # -- run ------------------------------------------------------------------

    def run(self):
        self._capture_baseline()
        self._launch()
        try:
            self.sim.run_until_idle(max_events=self.max_events)
            self._probe()
        except Exception as exc:  # noqa: BLE001 — a crash IS the finding
            self.report.crashed = exc
            self.report.violation(
                "crash", f"{type(exc).__name__}: {exc}"
            )
            self._finalize()
            return self.report

        if self.report.acked_puts == 0:
            self.report.violation(
                "liveness:no-progress", "not a single PUT was acked"
            )
        self._check_vacuity()
        if self.contain and self.report.responses.get(503, 0) == 0 and \
                self.report.responses.get(507, 0) == 0:
            self.report.violation(
                "config:no-overload",
                "storm never triggered shedding — the world is not "
                "under-provisioned enough to test anything",
            )
        dead = sum(1 for c in self._conns if c.in_flight is not None
                   and not c.done)
        if dead:
            self.report.violation(
                "liveness:stalled",
                f"{dead} connection(s) still awaiting a response at idle",
            )
        self._check_oracles()
        self._finalize()
        return self.report

    def _finalize(self):
        self.report.server_stats = dict(self.testbed.kv.stats)
        if self.overload is not None:
            self.report.overload_stats = dict(self.overload.stats)


def run_overload_storm(**kwargs):
    """Convenience: build and run one storm; returns the ChaosReport."""
    return OverloadStorm(**kwargs).run()


# -- CLI ----------------------------------------------------------------------


def build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-chaoscheck",
        description="Overload chaos storm against the serving path: "
                    "pool-exhaustion bursts, fabric fault squalls and "
                    "slow-client stalls, with liveness/durability/leak "
                    "oracles.",
    )
    parser.add_argument("--cluster", action="store_true",
                        help="run the whole-host-kill cluster storm "
                             "instead of the single-server overload storm "
                             "(see repro.testing.chaos_cluster)")
    parser.add_argument("--hosts", type=int, default=3,
                        help="cluster mode: server hosts (default: 3)")
    parser.add_argument("--ack-policy", choices=("sync", "primary-only"),
                        default="sync",
                        help="cluster mode: when the client's 200 is sent "
                             "relative to the backup's ack (default: sync)")
    parser.add_argument("--transport", choices=("tcp", "homa"),
                        default="tcp",
                        help="serve over HTTP/TCP or the Homa-like "
                             "message transport (default: tcp)")
    parser.add_argument("--cores", type=int, default=1,
                        help="server cores (default: 1)")
    parser.add_argument("--connections", type=int, default=100,
                        help="burst connections (default: 100)")
    parser.add_argument("--puts-per-conn", type=int, default=6,
                        help="PUTs per connection (default: 6)")
    parser.add_argument("--keys-per-conn", type=int, default=2,
                        help="private keys per connection; smaller than "
                             "--puts-per-conn forces overwrites, feeding "
                             "the emergency GC (default: 2)")
    parser.add_argument("--value-size", type=int, default=1400,
                        help="PUT value size in bytes (default: 1400)")
    parser.add_argument("--pool-slots", type=int, default=256,
                        help="PM packet-pool slots — small enough that the "
                             "burst exhausts it (default: 256)")
    parser.add_argument("--slab-slots", type=int, default=None,
                        help="metadata slab slots (default: sized to "
                             "pressure under the burst)")
    parser.add_argument("--stalls", type=int, default=4,
                        help="slow clients that stall mid-request then "
                             "reset (default: 4)")
    parser.add_argument("--no-faults", action="store_true",
                        help="skip the mid-burst loss/duplication squall")
    parser.add_argument("--zero-copy", action="store_true",
                        help="serve GETs zero-copy (exercises degrade-to-"
                             "copy under pressure)")
    parser.add_argument("--no-containment", action="store_true",
                        help="run without the overload controller and with "
                             "error containment disabled (negative testing)")
    parser.add_argument("--expect-violations", action="store_true",
                        help="invert the exit status: succeed only if the "
                             "storm finds violations")
    parser.add_argument("--max-events", type=int, default=20_000_000,
                        help="simulator event budget (default: 20M)")
    parser.add_argument("--seed", type=int, default=1,
                        help="seed for fault injection and value patterns")
    return parser


def _main_cluster(args):
    """``repro-chaoscheck --cluster``: the whole-host-kill storm.

    The overload-storm knobs map onto the cluster storm: connections
    become client loops, puts-per-conn the per-burst put count (the
    storm runs two bursts, the kill lands inside the second).
    """
    from repro.testing.chaos_cluster import run_host_kill_storm

    print(f"[cluster-chaos] storm: {args.hosts} hosts x{args.cores}core, "
          f"ack_policy={args.ack_policy}, {args.connections} loops x "
          f"2x{args.puts_per_conn} PUTs ({args.value_size} B), "
          f"pool {args.pool_slots} slots, seed {args.seed}")
    report = run_host_kill_storm(
        hosts=args.hosts,
        cores=args.cores,
        ack_policy=args.ack_policy,
        loops=args.connections,
        puts_per_loop=args.puts_per_conn,
        keys_per_loop=args.keys_per_conn,
        value_size=args.value_size,
        pool_slots=args.pool_slots,
        seed=args.seed,
        max_events=args.max_events,
    )
    print(report.summary())
    if args.expect_violations:
        if report.ok:
            print("[cluster-chaos] FAIL: expected violations, storm was "
                  "clean")
            return 1
        print(f"[cluster-chaos] OK: gap detected "
              f"({len(report.violations)} violations, as expected)")
        return 0
    if not report.ok:
        print("[cluster-chaos] FAIL: failover contract violated")
        return 1
    print("[cluster-chaos] OK: acked puts survived the host kill, "
          "refcounts exact, traces stitched")
    return 0


def main(argv=None):
    import sys

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cluster:
        return _main_cluster(args)
    contain = not args.no_containment
    print(f"[chaos] storm: {args.transport} x{args.cores}core, "
          f"{args.connections} conns x "
          f"{args.puts_per_conn} PUTs ({args.value_size} B), "
          f"pool {args.pool_slots} slots, stalls {args.stalls}, "
          f"faults {'off' if args.no_faults else 'on'}, "
          f"containment {'on' if contain else 'OFF'}")
    report = run_overload_storm(
        transport=args.transport,
        cores=args.cores,
        connections=args.connections,
        puts_per_conn=args.puts_per_conn,
        keys_per_conn=args.keys_per_conn,
        value_size=args.value_size,
        pool_slots=args.pool_slots,
        slab_slots=args.slab_slots,
        contain=contain,
        zero_copy=args.zero_copy,
        stalls=args.stalls,
        storm_faults=not args.no_faults,
        seed=args.seed,
        max_events=args.max_events,
    )
    print(report.summary())

    if args.expect_violations:
        if report.ok:
            print("[chaos] FAIL: expected violations, storm was clean")
            return 1
        print(f"[chaos] OK: containment gap detected "
              f"({len(report.violations)} violations, as expected)")
        return 0
    if not report.ok:
        print("[chaos] FAIL: overload contract violated")
        return 1
    print("[chaos] OK: server stayed live, acked writes durable, "
          "no leaks after the storm")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
