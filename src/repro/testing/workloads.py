"""Canonical crash-sweep worlds: the persistence-path clients.

A *world* bundles a recording device, the stores built over it, an op
journal, and the matching recovery callable — everything a
:class:`~repro.testing.harness.CrashSweep` needs.  Three are provided:

- :class:`PacketStoreWorld` — the paper's packet-native store (§4.2),
  the primary subject of the §5.1 durability claim;
- :class:`NoveLSMWorld` — the persistent-PM-memtable LSM, the second
  PM client of the harness;
- :class:`WalWorld` — the disk-era WAL over a block device, crash-
  tested with torn block writes.

Worlds are deliberately small (kilobytes, not the testbed's hundreds
of megabytes): an exhaustive sweep copies the persistence image once
per crash scenario, so image size is the sweep's unit cost.
"""

from repro.core.pktstore import PacketStore
from repro.net.pool import BufferPool
from repro.pm.namespace import PMNamespace
from repro.sim.context import NULL_CONTEXT
from repro.storage.lsm import novelsm_reattach, novelsm_store
from repro.storage.skiplist import _XorShift
from repro.storage.wal import WriteAheadLog

from repro.testing.harness import CrashSweep
from repro.testing.journal import OpJournal
from repro.testing.oracle import (
    KVDurabilityOracle,
    PacketStoreStructureOracle,
    WalPrefixOracle,
)
from repro.testing.record import RecordingBlockDevice, RecordingPMDevice


class RecoveredPacketStore:
    """Recovery result bundle satisfying both oracle protocols."""

    def __init__(self, store, report, pool):
        self.store = store
        self.report = report
        self.pool = pool

    def mapping(self):
        return dict(self.store.scan())


class PacketStoreWorld:
    """A packet store over a recording PM device, journalled end to end."""

    POOL_REGION = "crash-pktbufs"
    META_REGION = "crash-meta"

    def __init__(self, device_bytes=1 << 20, pool_bytes=256 << 10,
                 meta_bytes=64 << 10, slot_size=2048, seed=1, clock=None):
        self.device = RecordingPMDevice(device_bytes, clock=clock)
        self.journal = OpJournal(lambda: self.device.event_count)
        self.slot_size = slot_size
        self.seed = seed
        self.ns = PMNamespace(self.device)
        self.pool = BufferPool(
            self.ns.create(self.POOL_REGION, pool_bytes), slot_size
        )
        self.meta_region = self.ns.create(self.META_REGION, meta_bytes)
        self.store = PacketStore.create(self.meta_region, self.pool, seed=seed)
        self.device.mark_setup_complete()
        self._tstamp = 0

    # ------------------------------------------------------------- operations

    def put(self, key, value, ctx=NULL_CONTEXT):
        """One acked put: value lands in a fresh PM packet buffer."""
        if len(value) > self.slot_size:
            raise ValueError("value larger than a packet-buffer slot")
        op = self.journal.begin("put", key, value)
        buf = self.pool.alloc()
        buf.write(0, value)
        self._tstamp += 1
        self.store.put(key, [(buf, 0, len(value))], len(value),
                       self._tstamp, 0, ctx)
        self.journal.commit(op)
        return op

    def delete(self, key, ctx=NULL_CONTEXT):
        op = self.journal.begin("delete", key)
        self.store.delete(key, ctx)
        self.journal.commit(op)
        return op

    def get(self, key, ctx=NULL_CONTEXT):
        return self.store.get(key, ctx)

    # --------------------------------------------------------------- recovery

    def recover(self, device):
        ns = PMNamespace.reopen(device)
        pool = BufferPool(ns.open(self.POOL_REGION), self.slot_size)
        store, report = PacketStore.recover(
            ns.open(self.META_REGION), pool, seed=self.seed
        )
        return RecoveredPacketStore(store, report, pool)

    def oracles(self):
        return [KVDurabilityOracle(), PacketStoreStructureOracle()]

    def sweep(self, **kwargs):
        """A ready-to-run :class:`CrashSweep` over this world's trace."""
        kwargs.setdefault("oracles", self.oracles())
        return CrashSweep(self.device.trace, self.recover,
                          kwargs.pop("oracles"), self.journal, **kwargs)


class RecoveredLSM:
    """Mapping-protocol wrapper over a reattached LSM store."""

    def __init__(self, store):
        self.store = store

    def mapping(self):
        return dict(self.store.scan())


class NoveLSMWorld:
    """NoveLSM's persistent PM memtable as the harness's second client."""

    def __init__(self, device_bytes=2 << 20, arena_size=512 << 10, seed=1,
                 clock=None):
        self.device = RecordingPMDevice(device_bytes, clock=clock)
        self.journal = OpJournal(lambda: self.device.event_count)
        self.arena_size = arena_size
        self.seed = seed
        self.ns = PMNamespace(self.device)
        # memtable_limit above the arena keeps everything in PM (the
        # paper's §3 configuration: no rotation, no disk).
        self.store = novelsm_store(self.ns, arena_size=arena_size,
                                   memtable_limit=1 << 30, seed=seed)
        self.device.mark_setup_complete()

    def put(self, key, value, ctx=NULL_CONTEXT):
        op = self.journal.begin("put", key, value)
        self.store.put(key, value, ctx)
        self.journal.commit(op)
        return op

    def delete(self, key, ctx=NULL_CONTEXT):
        op = self.journal.begin("delete", key)
        self.store.delete(key, ctx)
        self.journal.commit(op)
        return op

    def recover(self, device):
        ns = PMNamespace.reopen(device)
        store = novelsm_reattach(ns, arena_size=self.arena_size,
                                 seed=self.seed)
        return RecoveredLSM(store)

    def oracles(self):
        return [KVDurabilityOracle()]

    def sweep(self, **kwargs):
        kwargs.setdefault("oracles", self.oracles())
        return CrashSweep(self.device.trace, self.recover,
                          kwargs.pop("oracles"), self.journal, **kwargs)


class RecoveredWal:
    """Replayed-record list for :class:`WalPrefixOracle`."""

    def __init__(self, records):
        self.records = records

    def payloads(self):
        return self.records


class WalWorld:
    """Write-ahead log over a recording block device (torn block writes)."""

    def __init__(self, device_bytes=256 << 10, log_bytes=128 << 10, seed=1):
        self.device = RecordingBlockDevice(device_bytes)
        self.journal = OpJournal(lambda: self.device.event_count)
        self.log_bytes = log_bytes
        self.wal = WriteAheadLog(self.device, 0, log_bytes)
        self.device.mark_setup_complete()
        self._index = 0

    def append(self, payload, ctx=NULL_CONTEXT, sync=True):
        op = self.journal.begin("append", self._index, payload)
        self._index += 1
        self.wal.append(payload, ctx, sync=sync)
        if sync:
            # Only a synced append is acked; an unsynced append stays
            # in flight until a later sync-bearing append commits it.
            self.journal.commit(op)
        return op

    def recover(self, device):
        wal = WriteAheadLog(device, 0, self.log_bytes)
        return RecoveredWal(list(wal.replay(durable_only=True)))

    def oracles(self):
        return [WalPrefixOracle()]

    def sweep(self, **kwargs):
        kwargs.setdefault("oracles", self.oracles())
        return CrashSweep(self.device.trace, self.recover,
                          kwargs.pop("oracles"), self.journal, **kwargs)


# ------------------------------------------------------------------ workloads

def value_for(index, size, seed=1):
    """Deterministic distinct value bytes for op ``index``."""
    return bytes((seed * 131 + index * 7 + j) % 256 for j in range(size))


def sequential_puts(world, n=50, value_size=64, key_prefix="key"):
    """The acceptance workload: n acked puts of distinct keys/values."""
    for index in range(n):
        key = f"{key_prefix}-{index:04d}".encode()
        world.put(key, value_for(index, value_size + (index % 7)))


def mixed_ops(world, n=60, keyspace=10, value_size=48, seed=1,
              delete_every=7, check_gets=True):
    """Seeded random interleaving of puts, overwrites, and deletes.

    Returns the volatile model dict for pre-crash sanity checking.
    Gets (when the world supports them) are validated against the model
    inline, so the recorded trace also witnesses read consistency.
    """
    rng = _XorShift(seed)
    model = {}
    for index in range(n):
        key = f"k{rng.next() % keyspace:03d}".encode()
        if delete_every and index % delete_every == delete_every - 1 and model:
            victim = sorted(model)[rng.next() % len(model)]
            world.delete(victim)
            del model[victim]
        else:
            value = value_for(index, value_size + (rng.next() % 17), seed)
            world.put(key, value)
            model[key] = value
        if check_gets and hasattr(world, "get") and model:
            probe = sorted(model)[rng.next() % len(model)]
            found = world.get(probe)
            if found != model[probe]:
                raise AssertionError(
                    f"pre-crash read of {probe!r} returned {found!r}"
                )
    return model
