"""``repro-crashcheck``: the exhaustive crash-point sweep, as a command.

Runs a workload against a recording device, then crashes it at every
persistence-event boundary under every configured drain mode, runs real
recovery on each image, and checks the §5.1 oracles.  Exit status 0
means zero violations (or, with ``--expect-violations``, at least one —
for wiring the negative case into CI).

Examples::

    repro-crashcheck                          # 50 acked puts, full sweep
    repro-crashcheck --workload mixed --ops 60
    repro-crashcheck --world lsm --puts 20
    repro-crashcheck --max-events 200         # CI smoke bound
    repro-crashcheck --inject drop-fences --expect-violations
"""

import argparse
import sys

from repro.testing.workloads import (
    NoveLSMWorld,
    PacketStoreWorld,
    WalWorld,
    mixed_ops,
    sequential_puts,
    value_for,
)

WORLDS = ("pktstore", "lsm", "wal")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-crashcheck",
        description="Exhaustive crash-point fault injection for the "
                    "persistence path.",
    )
    parser.add_argument("--world", choices=WORLDS, default="pktstore",
                        help="which persistence client to sweep "
                             "(default: pktstore)")
    parser.add_argument("--workload", choices=("put", "mixed"), default="put",
                        help="put = sequential acked puts; mixed = seeded "
                             "random put/delete/get interleaving")
    parser.add_argument("--puts", type=int, default=50,
                        help="puts for the 'put' workload (default: 50)")
    parser.add_argument("--ops", type=int, default=60,
                        help="ops for the 'mixed' workload (default: 60)")
    parser.add_argument("--value-size", type=int, default=64,
                        help="base value size in bytes (default: 64)")
    parser.add_argument("--modes", default="clean,drain,torn",
                        help="comma list of clean,drain,torn,reorder "
                             "(default: clean,drain,torn)")
    parser.add_argument("--torn-cap", type=int, default=4,
                        help="single-line torn scenarios per crash point")
    parser.add_argument("--reorder-samples", type=int, default=3,
                        help="sampled drain subsets per point in reorder mode")
    parser.add_argument("--max-events", type=int, default=None,
                        help="sweep only the first N events (CI smoke)")
    parser.add_argument("--seed", type=int, default=1,
                        help="seed for the workload and reorder sampling")
    parser.add_argument("--inject", choices=("none", "drop-fences",
                                             "drop-flushes"),
                        default="none",
                        help="replay-level protocol fault injection")
    parser.add_argument("--include-setup", action="store_true",
                        help="also crash during world construction")
    parser.add_argument("--expect-violations", action="store_true",
                        help="invert the exit status: succeed only if the "
                             "sweep finds violations (negative testing)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print per-crash-point progress")
    return parser


def build_world(args):
    if args.world == "pktstore":
        world = PacketStoreWorld(seed=args.seed)
    elif args.world == "lsm":
        world = NoveLSMWorld(seed=args.seed)
    else:
        world = WalWorld(seed=args.seed)

    if args.world == "wal":
        # The WAL has no delete; its workload is appends (last unsynced).
        for index in range(args.puts):
            sync = index != args.puts - 1
            world.append(value_for(index, args.value_size, args.seed),
                         sync=sync)
    elif args.workload == "put":
        sequential_puts(world, n=args.puts, value_size=args.value_size)
    else:
        mixed_ops(world, n=args.ops, value_size=args.value_size,
                  seed=args.seed)
    return world


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    unknown = set(modes) - {"clean", "drain", "torn", "reorder"}
    if unknown:
        parser.error(f"--modes: unknown mode(s) {', '.join(sorted(unknown))} "
                     "(choose from clean, drain, torn, reorder)")
    if not modes:
        parser.error("--modes: need at least one of clean, drain, torn, reorder")

    world = build_world(args)
    trace = world.device.trace
    counts = ", ".join(f"{kind} {n}" for kind, n in sorted(trace.counts().items()))
    print(f"[crashcheck] world={args.world} workload={args.workload} "
          f"ops={len(world.journal)}")
    print(f"[crashcheck] trace: {len(trace)} events after setup "
          f"({trace.setup_events} setup) — {counts}")

    progress = None
    if args.verbose:
        def progress(k, limit, report):
            if k % 50 == 0 or k == limit:
                print(f"[crashcheck]   event {k}/{limit}: "
                      f"{report.scenarios} scenarios, "
                      f"{len(report.violations)} violations")

    sweep = world.sweep(
        modes=modes,
        torn_cap=args.torn_cap,
        reorder_samples=args.reorder_samples,
        max_events=args.max_events,
        include_setup=args.include_setup,
        drop_fences=args.inject == "drop-fences",
        drop_flushes=args.inject == "drop-flushes",
        seed=args.seed,
    )
    report = sweep.run(progress=progress)
    print(report.summary())

    if args.expect_violations:
        if report.ok:
            print("[crashcheck] FAIL: expected violations, sweep was clean")
            return 1
        print(f"[crashcheck] OK: injected fault detected "
              f"({len(report.violations)} violations, as expected)")
        return 0
    if not report.ok:
        print("[crashcheck] FAIL: durability contract violated")
        return 1
    print("[crashcheck] OK: every crash point recovered within contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
