"""Packets as Persistent In-Memory Data Structures — full reproduction.

A simulation-based reproduction of Michio Honda's HotNets 2021 paper:
the measurement study (Table 1, Figure 2) and a working build of the
proposal — network packet metadata as persistent storage structures.

Quick start::

    from repro import ServerConfig, make_testbed, WrkClient

    testbed = make_testbed(ServerConfig(engine="pktstore"))
    stats = WrkClient(testbed.client, "10.0.0.1", connections=25).run()
    print(stats.avg_rtt_us, stats.throughput_krps)

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.sim` — discrete-event engine, CPU cores, cost contexts.
- :mod:`repro.pm` — persistent-memory devices, flush/fence semantics,
  allocators, DAX-style namespaces, crash injection.
- :mod:`repro.net` — packets, TCP, the Homa-like transport, NIC
  offloads, fabric, host stacks (including PASTE mode).
- :mod:`repro.storage` — skip lists, WAL, SSTables, the LSM store
  (LevelDB/NoveLSM), networked KV servers.
- :mod:`repro.core` — the paper's contribution: persistent packet
  metadata, the packet-native store, PktFS, recovery, precv/psend.
- :mod:`repro.bench` — calibrated cost model, wrk-style clients,
  testbed builder, Table 1 / Figure 2 drivers.
"""

__version__ = "1.0.0"

from repro.bench.testbed import Testbed, make_testbed, preload
from repro.bench.wrk import HomaWrkClient, WrkClient
from repro.bench.table1 import run_table1
from repro.bench.figure2 import run_figure2
from repro.core import PacketIO, PacketStore, PktFS
from repro.pm import PMDevice, PMNamespace
from repro.sim import ExecutionContext, Simulator
from repro.storage.server import ServerConfig, serve

__all__ = [
    "__version__",
    "ServerConfig",
    "serve",
    "Testbed",
    "make_testbed",
    "preload",
    "WrkClient",
    "HomaWrkClient",
    "run_table1",
    "run_figure2",
    "PacketStore",
    "PktFS",
    "PacketIO",
    "PMDevice",
    "PMNamespace",
    "Simulator",
    "ExecutionContext",
]
