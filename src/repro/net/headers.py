"""Wire-format codecs: Ethernet, IPv4 and TCP headers.

Real byte-level formats, built and parsed with :mod:`struct`.  The
fabric carries linearised packets, so every header here actually
crosses the (simulated) wire; corruption injected by the fabric is
caught by these checksums exactly as on real hardware.
"""

import struct

ETH_HEADER_LEN = 14
IPV4_HEADER_LEN = 20
TCP_HEADER_LEN = 20

ETHERTYPE_IPV4 = 0x0800
IPPROTO_TCP = 6

# TCP flags
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10

from repro.net.checksum import checksum_finish, checksum_partial


def ip_to_int(ip):
    """Dotted-quad string -> 32-bit int (ints pass through)."""
    if isinstance(ip, int):
        return ip
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {ip!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 address {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value):
    """32-bit int -> dotted-quad string."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_bytes(mac):
    """'aa:bb:cc:dd:ee:ff' or bytes -> 6 raw bytes."""
    if isinstance(mac, (bytes, bytearray)):
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        return bytes(mac)
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC {mac!r}")
    return bytes(int(p, 16) for p in parts)


class EthernetHeader:
    """14-byte Ethernet II header."""

    __slots__ = ("dst", "src", "ethertype")
    _fmt = struct.Struct("!6s6sH")

    def __init__(self, dst, src, ethertype=ETHERTYPE_IPV4):
        self.dst = mac_to_bytes(dst)
        self.src = mac_to_bytes(src)
        self.ethertype = ethertype

    def pack(self):
        return self._fmt.pack(self.dst, self.src, self.ethertype)

    @classmethod
    def unpack(cls, data):
        if len(data) < ETH_HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        dst, src, ethertype = cls._fmt.unpack_from(data, 0)
        # struct already yields validated 6-byte fields; skip the
        # string-parsing constructor on the per-frame path.
        header = object.__new__(cls)
        header.dst = dst
        header.src = src
        header.ethertype = ethertype
        return header

    def __repr__(self):
        return f"<Eth {self.src.hex(':')}→{self.dst.hex(':')} type=0x{self.ethertype:04x}>"


class IPv4Header:
    """20-byte IPv4 header (no options)."""

    __slots__ = ("src", "dst", "proto", "total_len", "ttl", "ident")
    _fmt = struct.Struct("!BBHHHBBHII")

    def __init__(self, src, dst, proto=IPPROTO_TCP, total_len=IPV4_HEADER_LEN, ttl=64, ident=0):
        self.src = ip_to_int(src)
        self.dst = ip_to_int(dst)
        self.proto = proto
        self.total_len = total_len
        self.ttl = ttl
        self.ident = ident

    #: (src, dst, proto, total_len, ttl, ident) -> packed bytes.  A
    #: steady-state connection re-emits headers differing only in
    #: total_len/ident, so the working set is tiny; bounded + cleared
    #: wholesale to stay a cache, not a leak.
    _pack_memo = {}

    def pack(self):
        key = (self.src, self.dst, self.proto, self.total_len, self.ttl,
               self.ident)
        memo = IPv4Header._pack_memo
        packed = memo.get(key)
        if packed is None:
            header = bytearray(
                self._fmt.pack(
                    0x45, 0, self.total_len, self.ident, 0, self.ttl,
                    self.proto, 0, self.src, self.dst,
                )
            )
            csum = checksum_finish(checksum_partial(header))
            struct.pack_into("!H", header, 10, csum)
            packed = bytes(header)
            if len(memo) >= 4096:
                memo.clear()
            memo[key] = packed
        return packed

    @classmethod
    def unpack(cls, data):
        if len(data) < IPV4_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (vihl, _tos, total_len, ident, _frag, ttl, proto, _csum, src, dst) = cls._fmt.unpack_from(data, 0)
        if vihl >> 4 != 4:
            raise ValueError(f"not IPv4 (version={vihl >> 4})")
        # Wire fields are already ints in range; skip ip_to_int.
        header = object.__new__(cls)
        header.src = src
        header.dst = dst
        header.proto = proto
        header.total_len = total_len
        header.ttl = ttl
        header.ident = ident
        return header

    def verify_checksum(self, raw):
        """Checksum the raw 20 header bytes; valid iff they fold to zero."""
        total = checksum_partial(raw[:IPV4_HEADER_LEN])
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        return total == 0xFFFF

    def pseudo_header_sum(self, tcp_len):
        """One's-complement partial sum of the TCP pseudo-header.

        Computed arithmetically: the pseudo-header's 16-bit words are
        the halves of src and dst, (zero << 8 | proto), and tcp_len —
        identical to summing the packed 12 bytes.
        """
        src = self.src
        dst = self.dst
        return ((src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF)
                + self.proto + tcp_len)

    def __repr__(self):
        return f"<IPv4 {int_to_ip(self.src)}→{int_to_ip(self.dst)} len={self.total_len}>"


class TCPHeader:
    """20-byte TCP header (window-scale-free; the model window fits)."""

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window", "checksum", "urgent")
    _fmt = struct.Struct("!HHIIBBHHH")

    def __init__(self, src_port, dst_port, seq=0, ack=0, flags=0, window=65535, checksum=0, urgent=0):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window
        self.checksum = checksum
        self.urgent = urgent

    def pack(self):
        offset_byte = (TCP_HEADER_LEN // 4) << 4
        return self._fmt.pack(
            self.src_port, self.dst_port, self.seq, self.ack,
            offset_byte, self.flags, self.window, self.checksum, self.urgent,
        )

    @classmethod
    def unpack(cls, data):
        if len(data) < TCP_HEADER_LEN:
            raise ValueError("truncated TCP header")
        (src_port, dst_port, seq, ack, offset_byte, flags, window, checksum, urgent) = cls._fmt.unpack_from(data, 0)
        if (offset_byte >> 4) * 4 < TCP_HEADER_LEN:
            raise ValueError("bad TCP data offset")
        # Wire fields are already masked 32-bit ints; build directly.
        header = object.__new__(cls)
        header.src_port = src_port
        header.dst_port = dst_port
        header.seq = seq
        header.ack = ack
        header.flags = flags
        header.window = window
        header.checksum = checksum
        header.urgent = urgent
        return header

    def compute_checksum(self, ip_header, payload):
        """TCP checksum over pseudo-header + header + payload."""
        self.checksum = 0
        partial = ip_header.pseudo_header_sum(TCP_HEADER_LEN + len(payload))
        partial = checksum_partial(self.pack(), partial)
        partial = checksum_partial(payload, partial)
        self.checksum = checksum_finish(partial)
        return self.checksum

    def verify_checksum(self, ip_header, payload):
        """True iff the embedded checksum matches pseudo-header + payload."""
        stored = self.checksum
        self.checksum = 0
        try:
            partial = ip_header.pseudo_header_sum(TCP_HEADER_LEN + len(payload))
            partial = checksum_partial(self.pack(), partial)
            partial = checksum_partial(payload, partial)
            return checksum_finish(partial) == stored
        finally:
            self.checksum = stored

    def flag_names(self):
        names = []
        for bit, name in ((SYN, "SYN"), (ACK, "ACK"), (FIN, "FIN"), (RST, "RST"), (PSH, "PSH")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "-"

    def __repr__(self):
        return (
            f"<TCP {self.src_port}→{self.dst_port} {self.flag_names()} "
            f"seq={self.seq} ack={self.ack}>"
        )
