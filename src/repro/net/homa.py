"""A Homa-like receiver-driven message transport (§5.2).

The paper's research agenda points at new reliable transports — Homa
in particular — as the force that will shrink networking latency and
make storage data-management overheads even more dominant, and notes
that the Linux Homa implementation reuses regular packet metadata so
the repurposing proposal carries over.  This module provides that
transport so the claim is runnable, not hypothetical:

- **Message-oriented RPCs**: no connections, no handshake; a request
  message and its reply are matched by a 64-bit RPC id.
- **Receiver-driven flow control**: the first ``RTT_BYTES`` of a
  message are sent *unscheduled*; the rest trickles out against GRANT
  packets issued by the receiver, which always grants the message with
  the fewest remaining bytes (SRPT) — Homa's core scheduling idea.
- **Loss recovery is receiver-driven too**: an incomplete message that
  stalls triggers RESEND requests for the missing ranges; the sender
  keeps (clones of) transmitted packets until the receiver's ACK, the
  same retained-metadata lifetime TCP gives the paper (§4.1).
- Packets carry the same metadata as TCP's (NIC hardware timestamps,
  checksum offload verdicts), so the packet-native storage engines work
  unchanged on top.

Cost model: Homa's datapath is charged at a fraction of TCP's
per-segment costs (`HOMA_COST_SCALE`), reflecting the measured
small-message latency advantage of the Linux implementation the paper
cites.  This is a modeled assumption, recorded here and in DESIGN.md.

Simplifications vs real Homa: no packet priorities (SRPT ordering is
kept, the priority queues are not), single-range RESENDs, and a fixed
unscheduled window instead of per-peer RTT estimation.
"""

import struct

from repro.net.headers import (
    ETH_HEADER_LEN,
    IPV4_HEADER_LEN,
    IPv4Header,
    ip_to_int,
)
from repro.net.pktbuf import PktBuf
from repro.net.pool import PoolExhausted
from repro.net.stack import _eth_header_bytes
from repro.net.tcp import RxSegment
from repro.sim.units import MILLIS

#: IANA has no Homa number; Linux Homa uses 0xFD (experimental).
IPPROTO_HOMA = 0xFD

#: One-RTT worth of unscheduled bytes (Homa's rttBytes).
RTT_BYTES = 10_000

#: Grant increment: keep this many granted-but-unsent bytes outstanding.
GRANT_WINDOW = 10_000

#: Per-packet payload: same 1500 B MTU as TCP, minus the 8 extra bytes
#: the Homa header carries over TCP's 20.
HOMA_MSS = 1452

#: Receiver timeout before asking for missing bytes.
RESEND_TIMEOUT = 5 * MILLIS
MAX_RESENDS = 10

#: Sender timeout before retransmitting an unacknowledged message.
#: Receiver-driven RESEND only works once the receiver has seen at
#: least one DATA packet; a message lost *in its entirety* (every
#: packet dropped on the wire, or never built for want of a tx buffer)
#: leaves the receiver with no state to recover from, so the sender
#: must own that case — as real Homa's sender timeout does.
SEND_TIMEOUT = 5 * MILLIS
MAX_SEND_RETRIES = 10

#: Completed-RPC memory: a request whose MSG_ACK was lost is
#: retransmitted by the sender; re-running the handler would duplicate
#: the request, so the receiver remembers recently completed RPCs and
#: answers retransmits with a fresh ACK instead.
COMPLETED_MEMORY = 4096

#: Homa's streamlined datapath, as a fraction of the TCP per-segment cost.
HOMA_COST_SCALE = 0.5

# Packet types.
DATA = 1
GRANT = 2
RESEND = 3
MSG_ACK = 4

HOMA_HEADER = struct.Struct("!BBHHHQIIHH")
# type, flags, checksum, sport, dport, rpc_id, offset, msg_len, payload_len, pad
# The checksum sits at offset 2 so the NIC offload can fill/verify it
# exactly as it does TCP's (the paper: Homa reuses NIC offload features).
HOMA_HEADER_LEN = HOMA_HEADER.size


class HomaHeader:
    __slots__ = ("ptype", "sport", "dport", "rpc_id", "offset", "msg_len", "payload_len")

    def __init__(self, ptype, sport, dport, rpc_id, offset=0, msg_len=0, payload_len=0):
        self.ptype = ptype
        self.sport = sport
        self.dport = dport
        self.rpc_id = rpc_id
        self.offset = offset
        self.msg_len = msg_len
        self.payload_len = payload_len

    def pack(self):
        return HOMA_HEADER.pack(
            self.ptype, 0, 0, self.sport, self.dport, self.rpc_id,
            self.offset, self.msg_len, self.payload_len, 0,
        )

    @classmethod
    def unpack(cls, raw):
        (ptype, _flags, _csum, sport, dport, rpc_id,
         offset, msg_len, payload_len, _pad) = HOMA_HEADER.unpack_from(raw, 0)
        return cls(ptype, sport, dport, rpc_id, offset, msg_len, payload_len)

    def __repr__(self):
        names = {DATA: "DATA", GRANT: "GRANT", RESEND: "RESEND", MSG_ACK: "ACK"}
        return (
            f"<Homa {names.get(self.ptype, self.ptype)} rpc={self.rpc_id} "
            f"off={self.offset}/{self.msg_len}>"
        )


class _OutMessage:
    """Sender-side state for one outgoing message."""

    __slots__ = ("rpc_id", "dst_ip", "sport", "dport", "data", "sent",
                 "granted", "acked", "packets", "ranges", "retry_timer",
                 "retries", "kind")

    def __init__(self, rpc_id, dst_ip, sport, dport, data, kind="request"):
        self.rpc_id = rpc_id
        self.dst_ip = dst_ip
        self.sport = sport
        self.dport = dport
        self.data = data
        #: "request" or "reply" — span-link attribution direction.
        self.kind = kind
        self.sent = 0
        self.granted = min(len(data), RTT_BYTES)
        self.acked = False
        #: offset -> retained clone, kept until the message is ACKed.
        self.packets = {}
        #: offset -> length of every range originally transmitted; the
        #: sender-timeout retransmit replays these exact ranges so the
        #: receiver's offset-keyed dedup recognises them (grant windows
        #: cut non-MSS-aligned boundaries, so re-chunking would overlap).
        self.ranges = {}
        self.retry_timer = None
        self.retries = 0


class _InMessage:
    """Receiver-side reassembly state for one incoming message."""

    __slots__ = ("rpc_id", "peer_ip", "sport", "dport", "msg_len", "segments",
                 "received", "granted", "resend_timer", "resends")

    def __init__(self, rpc_id, peer_ip, sport, dport, msg_len):
        self.rpc_id = rpc_id
        self.peer_ip = peer_ip
        self.sport = sport
        self.dport = dport
        self.msg_len = msg_len
        #: offset -> RxSegment (retained pktbuf slices).
        self.segments = {}
        self.received = 0
        self.granted = min(msg_len, RTT_BYTES)
        self.resend_timer = None
        self.resends = 0

    @property
    def complete(self):
        return self.received >= self.msg_len

    def missing_range(self):
        """First missing (offset, length) hole."""
        expected = 0
        for offset in sorted(self.segments):
            if offset > expected:
                return expected, offset - expected
            expected = max(expected, offset + self.segments[offset].length)
        if expected < self.msg_len:
            return expected, self.msg_len - expected
        return None


class HomaRpc:
    """Server-side handle: reply to a received request."""

    __slots__ = ("transport", "rpc_id", "peer_ip", "peer_port", "local_port")

    def __init__(self, transport, rpc_id, peer_ip, peer_port, local_port):
        self.transport = transport
        self.rpc_id = rpc_id
        self.peer_ip = peer_ip
        self.peer_port = peer_port
        self.local_port = local_port

    def reply(self, data, ctx):
        self.transport._send_message(
            self.rpc_id, self.peer_ip, self.local_port, self.peer_port, data,
            ctx, kind="reply",
        )


class HomaTransport:
    """Host transport speaking the Homa-like protocol.

    Plug-compatible with :class:`~repro.net.stack.NetworkStack` for the
    host's rx/tx plumbing (``rx``, ``drain_tx``, ``core_for_packet``).
    """

    def __init__(self, host, costs, tx_pool):
        self.host = host
        self.sim = host.sim
        self.costs = costs
        self.tx_pool = tx_pool
        self.tx_headroom = ETH_HEADER_LEN + IPV4_HEADER_LEN + HOMA_HEADER_LEN + 10
        self._pending_tx = []
        self._listeners = {}          # port -> handler(rpc, message, ctx)
        self._reply_waiters = {}      # rpc_id -> callback(message, ctx)
        self._giveup_waiters = {}     # rpc_id -> callback(rpc_id)
        self._waiter_dst = {}         # rpc_id -> dst_ip while a waiter is armed
        self._out = {}                # rpc_id -> _OutMessage (latest per id)
        self._in = {}                 # (peer_ip, rpc_id, dport) -> _InMessage
        self._completed = {}          # recently completed keys (dedup memory)
        self._rpc_counter = (host.ip & 0xFFFF) << 32
        self._ephemeral = 52_000
        #: Optional live-observability hook (repro.obs.Recorder): send
        #: attempts and give-ups feed the span-link chains.  None costs
        #: one attribute load per send.
        self.recorder = None
        self.stats = {
            "tx_data": 0, "rx_data": 0, "grants": 0, "resends": 0,
            "messages_delivered": 0, "bad_csum": 0,
            "tx_dropped_nobuf": 0, "send_retries": 0, "send_give_ups": 0,
            "dup_completed": 0, "peer_aborts": 0,
        }

    # -- application surface ----------------------------------------------------

    def listen(self, port, handler):
        """``handler(rpc, message_segments, ctx)`` per complete request."""
        if port in self._listeners:
            raise ValueError(f"port {port} already listening")
        self._listeners[port] = handler

    def send_request(self, dst_ip, dst_port, data, ctx, on_reply=None,
                     sport=None, on_giveup=None):
        """Fire an RPC; ``on_reply(segments, ctx)`` when the answer lands.

        ``on_giveup(rpc_id)`` fires instead if the transport abandons
        the RPC — retry budget exhausted or the peer declared dead via
        :meth:`abort_peer` — after every retained clone is released.
        Exactly one of the two callbacks runs.
        """
        self._rpc_counter += 1
        rpc_id = self._rpc_counter
        sport = sport or self._next_ephemeral()
        dst = ip_to_int(dst_ip)
        if on_reply is not None:
            self._reply_waiters[rpc_id] = on_reply
        if on_giveup is not None:
            self._giveup_waiters[rpc_id] = on_giveup
        if on_reply is not None or on_giveup is not None:
            self._waiter_dst[rpc_id] = dst
        self._send_message(rpc_id, dst, sport, dst_port, data, ctx)
        return rpc_id

    def _next_ephemeral(self):
        self._ephemeral += 1
        return self._ephemeral

    # -- send side ----------------------------------------------------------------

    def _send_message(self, rpc_id, dst_ip, sport, dport, data, ctx,
                      kind="request"):
        message = _OutMessage(rpc_id, dst_ip, sport, dport, bytes(data),
                              kind=kind)
        self._out[rpc_id] = message
        if self.recorder is not None:
            self.recorder.homa_send(rpc_id, kind, retransmit=False,
                                    core=self.core_for_rpc(rpc_id).index)
        self._pump(message, ctx)
        self._arm_retry(message)

    def _arm_retry(self, message):
        if message.retry_timer is not None:
            message.retry_timer.cancel()
        message.retry_timer = self.sim.schedule(
            SEND_TIMEOUT, self._on_send_timeout, message.rpc_id
        )

    def _give_up(self, message):
        """Terminal give-up on an outgoing message: the peer is presumed
        dead.  Releases every queued retransmission clone, cancels the
        retry timer, emits the terminal ``homa.giveup`` span, and fails
        the waiters — nothing will ever answer this RPC."""
        rpc_id = message.rpc_id
        self.stats["send_give_ups"] += 1
        self._out.pop(rpc_id, None)
        if message.retry_timer is not None:
            message.retry_timer.cancel()
            message.retry_timer = None
        for clone in message.packets.values():
            clone.release()
        message.packets.clear()
        message.ranges.clear()
        self._reply_waiters.pop(rpc_id, None)
        self._waiter_dst.pop(rpc_id, None)
        if self.recorder is not None:
            self.recorder.homa_give_up(
                rpc_id, message.kind,
                core=self.core_for_rpc(rpc_id).index)
        waiter = self._giveup_waiters.pop(rpc_id, None)
        if waiter is not None:
            waiter(rpc_id)

    def _on_send_timeout(self, rpc_id):
        if not self.host.alive:
            return
        message = self._out.get(rpc_id)
        if message is None or message.acked:
            return
        message.retry_timer = None
        message.retries += 1
        if message.retries > MAX_SEND_RETRIES:
            # Peer is gone; stop holding clones (and waiters) for a
            # lost cause.
            self._give_up(message)
            return
        self.stats["send_retries"] += 1

        def resend(ctx):
            if self.recorder is not None:
                self.recorder.homa_send(
                    message.rpc_id, message.kind, retransmit=True,
                    core=self.core_for_rpc(message.rpc_id).index)
            for offset in sorted(message.ranges):
                self._send_data(message, offset, message.ranges[offset],
                                ctx, retransmit=True)

        self.host.process_on_core(self.core_for_rpc(rpc_id), resend)
        self._arm_retry(message)

    def _pump(self, message, ctx):
        """Transmit everything currently granted."""
        while message.sent < message.granted:
            take = min(HOMA_MSS, message.granted - message.sent)
            self._send_data(message, message.sent, take, ctx)
            message.sent += take

    def _send_data(self, message, offset, length, ctx, retransmit=False):
        if not retransmit:
            message.ranges[offset] = length
        header = HomaHeader(
            DATA, message.sport, message.dport, message.rpc_id,
            offset=offset, msg_len=len(message.data), payload_len=length,
        )
        pkt = self._build(header, message.dst_ip,
                          message.data[offset:offset + length], ctx)
        if pkt is None:
            # Dropped for want of a tx buffer.  The receiver's RESEND
            # machinery recovers exactly as it would from wire loss, so
            # the message still counts the range as sent.
            return
        if not retransmit:
            # Keep a clone until the receiver acknowledges the message —
            # the same retained-metadata lifetime as TCP's rtx queue.
            message.packets[offset] = pkt.clone()
        self.stats["tx_data"] += 1

    def _send_control(self, ptype, dst_ip, sport, dport, rpc_id, offset, msg_len, ctx):
        header = HomaHeader(ptype, sport, dport, rpc_id,
                            offset=offset, msg_len=msg_len)
        self._build(header, dst_ip, b"", ctx)

    def _build(self, header, dst_ip, payload, ctx):
        try:
            pkt = PktBuf.alloc(self.tx_pool, headroom=self.tx_headroom)
        except PoolExhausted:
            # PoolExhausted must not unwind the rx path (a GRANT or ACK
            # is built while the peer's DATA packet is still referenced
            # above this frame).  Dropping the packet is loss the
            # protocol already tolerates.
            self.stats["tx_dropped_nobuf"] += 1
            return None
        self.costs.charge_pktbuf_alloc(ctx)
        if payload:
            pkt.append(payload)
            self.costs.charge_copy_to_skb(ctx, len(payload))
        ctx.charge(self.costs.tcp_tx * HOMA_COST_SCALE, "net.homa")
        pkt.push(header.pack())
        ip_header = IPv4Header(
            self.host.ip, dst_ip, IPPROTO_HOMA,
            total_len=IPV4_HEADER_LEN + HOMA_HEADER_LEN + len(payload),
        )
        pkt.push(ip_header.pack())
        self.costs.charge_ip_tx(ctx)
        pkt.push(_eth_header_bytes(self.host.ip, dst_ip))
        self.costs.charge_driver_tx(ctx)
        self._pending_tx.append((pkt, ip_header.dst))
        return pkt

    def drain_tx(self):
        out = self._pending_tx
        self._pending_tx = []
        return out

    def core_for_packet(self, pkt):
        """RSS: steer by RPC id so one message reassembles on one core.

        Homa has no connections, so the TCP trick (follow the socket's
        core) doesn't apply; hashing the RPC id keeps every DATA/GRANT/
        RESEND/ACK of an RPC — and the server handler it completes into
        — on a stable core, which is what lets ``cores=N`` servers
        spread independent RPCs without splitting one message's
        reassembly state across slices.
        """
        cpus = self.host.cpus
        if len(cpus) == 1 or \
                pkt.data_len < ETH_HEADER_LEN + IPV4_HEADER_LEN + HOMA_HEADER_LEN:
            return cpus[0]
        # The length guard above covers the whole Homa header, so read
        # just the 8-byte rpc_id field (header offset 8) rather than
        # materialising the full frame to unpack one field.
        raw = pkt.payload_slice(ETH_HEADER_LEN + IPV4_HEADER_LEN + 8, 8)
        return cpus[int.from_bytes(raw, "big") % len(cpus)]

    def core_for_rpc(self, rpc_id):
        """The core :meth:`core_for_packet` steers this RPC's packets to."""
        cpus = self.host.cpus
        return cpus[rpc_id % len(cpus)]

    # -- receive side ---------------------------------------------------------------

    def rx(self, pkt, ctx):
        self.costs.charge_driver_rx(ctx)
        if pkt.data_len < ETH_HEADER_LEN + IPV4_HEADER_LEN + HOMA_HEADER_LEN:
            pkt.release()
            return
        pkt.pull(ETH_HEADER_LEN)
        self.costs.charge_ip_rx(ctx)
        raw_ip = pkt.payload_slice(0, IPV4_HEADER_LEN)
        ip_header = IPv4Header.unpack(raw_ip)
        if ip_header.proto != IPPROTO_HOMA or not ip_header.verify_checksum(raw_ip):
            pkt.release()
            return
        if pkt.data_len > ip_header.total_len:
            pkt.trim(ip_header.total_len)
        pkt.pull(IPV4_HEADER_LEN)
        # Integrity: the NIC offload verified the Homa checksum exactly
        # as it does TCP's; corrupted frames die here.
        if pkt.wire_csum is not None and not pkt.csum_verified:
            self.stats["bad_csum"] += 1
            pkt.release()
            return
        header = HomaHeader.unpack(pkt.payload_slice(0, HOMA_HEADER_LEN))
        pkt.pull(HOMA_HEADER_LEN)
        pkt.ip = ip_header
        ctx.charge(self.costs.tcp_rx * HOMA_COST_SCALE, "net.homa")
        if header.ptype == DATA:
            self._rx_data(pkt, ip_header, header, ctx)
        elif header.ptype == GRANT:
            self._rx_grant(header, ctx)
        elif header.ptype == RESEND:
            self._rx_resend(header, ctx)
        elif header.ptype == MSG_ACK:
            self._rx_ack(header)
        pkt.release()

    # -- DATA -------------------------------------------------------------------

    def _rx_data(self, pkt, ip_header, header, ctx):
        self.stats["rx_data"] += 1
        key = (ip_header.src, header.rpc_id, header.dport)
        if key in self._completed:
            # The sender retransmitted a message we already delivered —
            # its MSG_ACK was lost.  Re-ACK; never re-run the handler.
            self.stats["dup_completed"] += 1
            self._send_control(MSG_ACK, ip_header.src, header.dport,
                               header.sport, header.rpc_id, 0,
                               header.msg_len, ctx)
            return
        message = self._in.get(key)
        if message is None:
            message = _InMessage(header.rpc_id, ip_header.src, header.sport,
                                 header.dport, header.msg_len)
            self._in[key] = message
        if header.offset in message.segments or message.complete:
            return  # duplicate
        segment = RxSegment(pkt.retain(), 0, header.payload_len)
        message.segments[header.offset] = segment
        message.received += header.payload_len
        self._arm_resend(key, message)

        if message.complete:
            self._complete(key, message, ctx)
        elif message.granted < message.msg_len and \
                message.received + GRANT_WINDOW > message.granted:
            # Receiver-driven: grant the shortest-remaining message first.
            self._grant_srpt(ctx)

    def _grant_srpt(self, ctx):
        incomplete = [m for m in self._in.values()
                      if not m.complete and m.granted < m.msg_len]
        if not incomplete:
            return
        best = min(incomplete, key=lambda m: m.msg_len - m.received)
        best.granted = min(best.msg_len, best.received + GRANT_WINDOW)
        self.stats["grants"] += 1
        self._send_control(GRANT, best.peer_ip, best.dport, best.sport,
                           best.rpc_id, best.granted, best.msg_len, ctx)

    def _complete(self, key, message, ctx):
        if message.resend_timer is not None:
            message.resend_timer.cancel()
            message.resend_timer = None
        del self._in[key]
        self._completed[key] = True
        if len(self._completed) > COMPLETED_MEMORY:
            # Bounded memory: evict the oldest completion records.
            for old in list(self._completed)[:COMPLETED_MEMORY // 4]:
                del self._completed[old]
        self.stats["messages_delivered"] += 1
        # Tell the sender it can drop its retained clones.
        self._send_control(MSG_ACK, message.peer_ip, message.dport,
                           message.sport, message.rpc_id, 0, message.msg_len, ctx)
        segments = [message.segments[off] for off in sorted(message.segments)]
        waiter = self._reply_waiters.pop(message.rpc_id, None)
        if waiter is not None:
            # The RPC resolved; its give-up path can no longer fire.
            self._giveup_waiters.pop(message.rpc_id, None)
            self._waiter_dst.pop(message.rpc_id, None)
        if self.recorder is not None:
            # Receiver-side completion: a delivered reply closes the
            # requester's chain; a delivered request precedes the
            # handler span that will join the same chain.
            self.recorder.homa_delivered(
                message.rpc_id, "reply" if waiter is not None else "request")
        if waiter is not None:
            waiter(segments, ctx)
        else:
            handler = self._listeners.get(message.dport)
            if handler is not None:
                rpc = HomaRpc(self, message.rpc_id, message.peer_ip,
                              message.sport, message.dport)
                handler(rpc, segments, ctx)
        for segment in segments:
            segment.release()

    # -- GRANT / RESEND / ACK ------------------------------------------------------

    def _rx_grant(self, header, ctx):
        message = self._out.get(header.rpc_id)
        if message is None or message.acked:
            return
        if header.offset > message.granted:
            message.granted = min(header.offset, len(message.data))
            self._pump(message, ctx)

    def _rx_resend(self, header, ctx):
        self.stats["resends"] += 1
        message = self._out.get(header.rpc_id)
        if message is None or message.acked:
            return
        end = min(header.offset + max(header.msg_len, 1), message.sent)
        offset = header.offset
        while offset < end:
            take = min(HOMA_MSS, end - offset)
            self._send_data(message, offset, take, ctx, retransmit=True)
            offset += take

    def _rx_ack(self, header):
        message = self._out.pop(header.rpc_id, None)
        if message is None:
            return
        message.acked = True
        if message.retry_timer is not None:
            message.retry_timer.cancel()
            message.retry_timer = None
        for clone in message.packets.values():
            clone.release()
        message.packets.clear()
        if header.rpc_id not in self._reply_waiters:
            # Fire-and-forget send with only a give-up callback: the
            # receiver acked the message, so give-up can't happen now.
            self._giveup_waiters.pop(header.rpc_id, None)
            self._waiter_dst.pop(header.rpc_id, None)

    # -- dead-peer teardown ----------------------------------------------------------

    def abort_peer(self, dst_ip):
        """Declare the peer at ``dst_ip`` dead and tear down immediately.

        The sender-timeout path takes ``MAX_SEND_RETRIES × SEND_TIMEOUT``
        (50 ms) to conclude a peer is gone; when a failure detector
        already knows (whole-host kill, failover), waiting just pins
        retransmission clones and reply waiters for a lost cause.  This:

        - gives up every outgoing message addressed to the peer
          (releases queued retransmission state, cancels retry timers,
          emits terminal ``homa.giveup`` spans, fails waiters);
        - fails reply waiters whose request was already MSG_ACKed but
          whose reply will now never arrive;
        - drops partially reassembled inbound messages from the peer
          (their RESEND requests would never be answered).

        Returns ``(aborted_out, dropped_in)`` counts.
        """
        dst = ip_to_int(dst_ip) if isinstance(dst_ip, str) else dst_ip
        self.stats["peer_aborts"] += 1
        aborted = 0
        for message in [m for m in self._out.values() if m.dst_ip == dst]:
            self._give_up(message)
            aborted += 1
        # Waiters with no _out state left: the request was delivered and
        # acked (the receiver marked that side of the chain delivered),
        # but the peer died before (or while) replying — the *reply*
        # side is what will never resolve now.
        abandoned_replies = set()
        for rpc_id in [r for r, d in self._waiter_dst.items() if d == dst]:
            self.stats["send_give_ups"] += 1
            self._reply_waiters.pop(rpc_id, None)
            self._waiter_dst.pop(rpc_id, None)
            abandoned_replies.add(rpc_id)
            if self.recorder is not None:
                self.recorder.homa_give_up(
                    rpc_id, "reply", core=self.core_for_rpc(rpc_id).index)
            waiter = self._giveup_waiters.pop(rpc_id, None)
            if waiter is not None:
                waiter(rpc_id)
            aborted += 1
        dropped = 0
        for key in [k for k, m in self._in.items() if m.peer_ip == dst]:
            message = self._in.pop(key)
            if message.resend_timer is not None:
                message.resend_timer.cancel()
                message.resend_timer = None
            for segment in message.segments.values():
                segment.release()
            message.segments.clear()
            dropped += 1
            # The dead sender's half-sent message can never finish and
            # its own (frozen) transport will never say so — terminate
            # the chain from this side so the trace has no orphan.  A
            # partial reply was already marked above via its waiter.
            if self.recorder is not None and \
                    message.rpc_id not in abandoned_replies:
                self.recorder.homa_give_up(
                    message.rpc_id, "request",
                    core=self.core_for_rpc(message.rpc_id).index)
        return aborted, dropped

    # -- receiver-driven loss recovery -----------------------------------------------

    def _arm_resend(self, key, message):
        if message.resend_timer is not None:
            message.resend_timer.cancel()
        message.resend_timer = self.sim.schedule(
            RESEND_TIMEOUT, self._on_resend_timeout, key
        )

    def _on_resend_timeout(self, key):
        if not self.host.alive:
            return
        message = self._in.get(key)
        if message is None or message.complete:
            return
        message.resends += 1
        if message.resends > MAX_RESENDS:
            # Give up: drop the partial message.
            for segment in message.segments.values():
                segment.release()
            del self._in[key]
            return

        def ask(ctx):
            hole = message.missing_range()
            if hole is not None:
                offset, length = hole
                self._send_control(RESEND, message.peer_ip, message.dport,
                                   message.sport, message.rpc_id, offset,
                                   length, ctx)

        self.host.process_on_core(self.core_for_rpc(message.rpc_id), ask)
        self._arm_resend(key, message)

    def __repr__(self):
        return f"<HomaTransport {len(self._in)} in, {len(self._out)} out>"
