"""TCP: reliable byte-stream transport over packet metadata.

A real (if compact) TCP: three-way handshake, MSS segmentation,
cumulative ACKs, retransmission driven by RTO and fast-retransmit,
out-of-order reassembly in a red-black tree, Reno congestion control,
16-bit flow-control window, FIN teardown and TIME_WAIT.

Two properties of the implementation matter to the paper:

- **Retransmission via clones** (§4.1): every transmitted data segment
  leaves a *clone* of its packet metadata in the retransmission queue.
  The clone shares payload buffers with whatever the driver transmitted,
  so payload bytes stay alive and bit-identical until cumulatively
  ACKed — the same lifetime guarantee a persistent store needs.
- **Out-of-order segments live in an RB-tree** (§4.2): arriving
  metadata is indexed by sequence number and spliced out when the gap
  fills, demonstrating packet metadata as an efficient in-memory index.

Sequence-number arithmetic uses plain integers; initial sequence
numbers are small and streams in this reproduction stay far below
2**31, so wraparound is out of scope (asserted, not silently wrong).
"""

import enum

from repro.net.headers import ACK, FIN, PSH, RST, SYN, TCPHeader
from repro.net.pktbuf import PktBuf
from repro.net.pool import PoolExhausted
from repro.net.rbtree import RBTree
from repro.sim.units import MICROS, MILLIS

#: Default maximum segment size (Ethernet MTU 1500 - 20 IP - 20 TCP).
MSS = 1460

#: Receive buffer limit; also the maximum advertised window (16-bit field).
MAX_RCV_WND = 65535

INITIAL_CWND_SEGMENTS = 10

#: Retransmission timer bounds.  Scaled down from real-world kernels
#: (200 ms min) so loss-recovery property tests converge quickly —
#: but kept well above any queueing delay the benchmarks produce
#: (~2 ms at 100 connections), or spurious retransmissions would
#: poison the measurements exactly as a too-low RTO floor would on
#: real hardware.
MIN_RTO = 20 * MILLIS
MAX_RTO = 400 * MILLIS
INITIAL_RTO = 20 * MILLIS

#: TIME_WAIT hold-down (2*MSL equivalent, scaled for simulation).
TIME_WAIT_NS = 4 * MILLIS

MAX_RETRIES = 12


class SendQueueFull(BufferError):
    """The connection's bounded send queue cannot accept more data.

    Raised *before* anything is enqueued or referenced, so the caller
    can shed cleanly (the stream stays consistent).  Bounding the queue
    is what keeps a stalled receiver from pinning unbounded buffer
    references behind a closed congestion window.
    """


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


class RxSegment:
    """A received payload slice handed to the application.

    Wraps the packet metadata so the app can either copy bytes out
    (classic socket read) or retain the underlying buffer (PASTE-style
    zero-copy, §2.2/§4).
    """

    __slots__ = ("pktbuf", "offset", "length")

    def __init__(self, pktbuf, offset, length):
        self.pktbuf = pktbuf
        self.offset = offset
        self.length = length

    def bytes(self):
        return self.pktbuf.payload_slice(self.offset, self.length)

    def retain(self):
        """Keep the packet metadata (and thus payload) alive past delivery."""
        self.pktbuf.retain()
        return self

    def release(self):
        self.pktbuf.release()

    def __len__(self):
        return self.length

    def __repr__(self):
        return f"<RxSegment {self.length}B @{self.offset}>"


class _RtxEntry:
    """One in-flight segment: sequence range plus the retained clone."""

    __slots__ = ("seq", "length", "flags", "clone", "sent_at", "retries")

    def __init__(self, seq, length, flags, clone, sent_at):
        self.seq = seq
        self.length = length  # sequence-space length (payload + SYN/FIN)
        self.flags = flags
        self.clone = clone
        self.sent_at = sent_at
        self.retries = 0

    @property
    def end(self):
        return self.seq + self.length


class _SendItem:
    """Pending app data: either bytes to copy or a buffer slice to reference."""

    __slots__ = ("data", "buf", "offset", "length")

    def __init__(self, data=None, buf=None, offset=0, length=0):
        self.data = data
        self.buf = buf
        self.offset = offset
        self.length = length if buf is not None else len(data)


class TcpConnection:
    """One TCP connection.  Owned by a :class:`~repro.net.stack.NetworkStack`."""

    def __init__(self, stack, local_ip, local_port, remote_ip, remote_port, core, iss):
        self.stack = stack
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.core = core
        self.state = TcpState.CLOSED
        self.mss = MSS
        #: Advertised-window ceiling (16-bit field; stacks may shrink it).
        self.rcv_wnd_limit = getattr(stack, "default_rcv_wnd", MAX_RCV_WND)
        #: Delayed-ACK interval; None = immediate (quickack) pure ACKs.
        self.delack_ns = getattr(stack, "delack_ns", None)
        self._delack_timer = None

        # Send state.
        self.iss = iss
        self.snd_una = iss
        self.snd_nxt = iss
        self.snd_wnd = MAX_RCV_WND
        self.send_queue = []
        self.send_queue_bytes = 0
        #: Bound on queued-but-unsent bytes; None = unbounded (historic
        #: behaviour).  Stacks set ``send_queue_limit`` to protect their
        #: tx pool from slow or stuck receivers.
        self.send_queue_limit = getattr(stack, "send_queue_limit", None)
        self.rtx_queue = []
        self.cwnd = INITIAL_CWND_SEGMENTS * MSS
        self.ssthresh = 1 << 30
        self.dupacks = 0
        self.fin_pending = False
        self.fin_seq = None

        # Receive state.
        self.irs = 0
        self.rcv_nxt = 0
        self.rcv_wnd = self.rcv_wnd_limit
        self.ooo = RBTree()
        self.ooo_bytes = 0

        # RTT estimation (RFC 6298).
        self.srtt = None
        self.rttvar = None
        self.rto = INITIAL_RTO
        self.rto_timer = None
        self.time_wait_timer = None

        # Deferred pure-ACK flag: set when rx consumed data; cleared when
        # any segment (which always carries the ACK) goes out this slice.
        self.ack_pending = False

        #: Simulation time of the last received segment; the stack's
        #: idle reaper uses it to spot half-open peers whose RST was
        #: lost (they stop talking but never close).
        self.last_activity = stack.sim.now

        # Application callbacks (wired up by the Socket wrapper).
        self.on_data = None
        self.on_established = None
        self.on_close = None
        self.on_reset = None

        # Statistics.
        self.stats = {
            "tx_segments": 0, "rx_segments": 0, "retransmits": 0,
            "fast_retransmits": 0, "rto_fires": 0, "ooo_queued": 0,
            "dup_segments": 0, "bytes_sent": 0, "bytes_delivered": 0,
            "bad_csum": 0, "send_queue_rejects": 0, "tx_pool_aborts": 0,
        }

    # ------------------------------------------------------------------ basics

    @property
    def tuple4(self):
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    def _flight_size(self):
        return self.snd_nxt - self.snd_una

    def _send_window(self):
        return min(self.cwnd, self.snd_wnd)

    def __repr__(self):
        return (
            f"<TcpConnection {self.local_port}→{self.remote_port} {self.state.value} "
            f"una={self.snd_una - self.iss} nxt={self.snd_nxt - self.iss}>"
        )

    # --------------------------------------------------------------- open/close

    def open_active(self, ctx):
        """Client side: send SYN."""
        if self.state is not TcpState.CLOSED:
            raise RuntimeError(f"cannot connect from {self.state}")
        self.state = TcpState.SYN_SENT
        self._emit_segment(ctx, flags=SYN, seq=self.snd_nxt, seqlen=1)
        self.snd_nxt += 1
        self._arm_rto()

    def open_passive(self):
        """Server side: wait for SYN (stack routes it here)."""
        self.state = TcpState.LISTEN

    def accept_syn(self, header, ctx):
        """Server side: a SYN arrived for this fresh connection."""
        self.irs = header.seq
        self.rcv_nxt = header.seq + 1
        self.snd_wnd = header.window
        self.state = TcpState.SYN_RCVD
        self._emit_segment(ctx, flags=SYN | ACK, seq=self.snd_nxt, seqlen=1)
        self.snd_nxt += 1
        self._arm_rto()

    def close(self, ctx):
        """Application close: FIN after pending data drains."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT, TcpState.LAST_ACK,
                          TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2, TcpState.CLOSING):
            return
        self.fin_pending = True
        self.output(ctx)

    def abort(self, ctx):
        """Send RST and tear down immediately."""
        if self.state not in (TcpState.CLOSED, TcpState.LISTEN):
            self._emit_segment(ctx, flags=RST | ACK, seq=self.snd_nxt, seqlen=0)
        self._teardown()

    def reap(self):
        """Silent teardown by the stack's idle reaper — no RST is sent.

        The peer is presumed gone (its RST or FIN was lost in transit),
        so there is nobody to notify and no tx buffer is needed.
        Firing the reset callback first lets the application drop its
        per-connection state — the partial request that a lost RST
        would otherwise pin forever.
        """
        if self.on_reset is not None:
            self.on_reset(self)
        self._teardown()

    def _teardown(self):
        self.state = TcpState.CLOSED
        self._cancel_rto()
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None
        if self.time_wait_timer is not None:
            self.time_wait_timer.cancel()
            self.time_wait_timer = None
        for entry in self.rtx_queue:
            entry.clone.release()
        self.rtx_queue.clear()
        # Unsent zero-copy items still hold data references taken in
        # send_buffer(); dropping them here is what makes teardown (FIN
        # or RST, graceful or not) leak-free — before this, a client
        # reset mid-response pinned the queued buffers forever.
        for item in self.send_queue:
            if item.buf is not None:
                item.buf.put()
        self.send_queue.clear()
        self.send_queue_bytes = 0
        while self.ooo:
            _, (pkt, _off, _length) = self.ooo.pop_min()
            pkt.release()
        self.ooo_bytes = 0
        self.stack.forget_connection(self)

    # ------------------------------------------------------------------- send

    def send(self, data, ctx, more=False):
        """Queue bytes for transmission (copied into packet buffers).

        ``more=True`` is MSG_MORE: enqueue without emitting, so a
        header and the payload that follows coalesce into one segment.
        """
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise RuntimeError(f"send in state {self.state}")
        if self.fin_pending:
            raise RuntimeError("send after close")
        self._check_send_room(len(data))
        self.send_queue.append(_SendItem(data=bytes(data)))
        self.send_queue_bytes += len(data)
        if not more:
            self.output(ctx)

    def send_buffer(self, buf, offset, length, ctx, more=False):
        """Queue a buffer slice zero-copy (transmitted as a frag page).

        Takes a data reference on ``buf`` for the duration of queueing
        and transmission — the caller's buffer is never copied.
        ``more=True`` is MSG_MORE (see :meth:`send`).
        """
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise RuntimeError(f"send in state {self.state}")
        if self.fin_pending:
            raise RuntimeError("send after close")
        self._check_send_room(length)
        buf.get()
        self.send_queue.append(_SendItem(buf=buf, offset=offset, length=length))
        self.send_queue_bytes += length
        if not more:
            self.output(ctx)

    def _check_send_room(self, length):
        if self.send_queue_limit is None:
            return
        if self.send_queue_bytes + length > self.send_queue_limit:
            self.stats["send_queue_rejects"] += 1
            raise SendQueueFull(
                f"send queue at {self.send_queue_bytes}B; "
                f"+{length}B exceeds the {self.send_queue_limit}B limit"
            )

    def output(self, ctx):
        """Transmit whatever the window allows from the send queue."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                              TcpState.FIN_WAIT_1, TcpState.CLOSING, TcpState.LAST_ACK):
            return
        sent_any = False
        try:
            while self.send_queue:
                window = self._send_window() - self._flight_size()
                if window <= 0:
                    break
                payload_items, length = self._gather(min(self.mss, window))
                if length == 0:
                    break
                self._emit_segment(
                    ctx, flags=ACK | PSH, seq=self.snd_nxt,
                    seqlen=length, payload_items=payload_items,
                )
                self.snd_nxt += length
                self.stats["bytes_sent"] += length
                sent_any = True
            if self.fin_pending and not self.send_queue and self.fin_seq is None:
                self._send_fin(ctx)
                sent_any = True
        except PoolExhausted:
            # The tx pool ran dry mid-stream.  The gathered bytes are
            # gone from the queue, so the byte stream can no longer be
            # kept consistent — reset the connection rather than corrupt
            # it.  output() is called from ACK processing and timers, so
            # this must be contained here, not in the application.
            self._abort_on_exhaustion(ctx)
            return
        if sent_any:
            self._arm_rto()

    def _gather(self, limit):
        """Pull up to ``limit`` bytes off the send queue as payload items."""
        items, total = [], 0
        while self.send_queue and total < limit:
            head = self.send_queue[0]
            take = min(head.length, limit - total)
            if head.buf is not None:
                items.append((head.buf.get(), head.offset, take))
                head.offset += take
                head.length -= take
                if head.length == 0:
                    head.buf.put()
                    self.send_queue.pop(0)
            else:
                items.append((None, head.data[:take], take))
                head.data = head.data[take:]
                head.length -= take
                if head.length == 0:
                    self.send_queue.pop(0)
            total += take
        self.send_queue_bytes -= total
        return items, total

    def _abort_on_exhaustion(self, ctx):
        """RST the peer if a tx buffer exists for it; vanish otherwise."""
        self.stats["tx_pool_aborts"] += 1
        if self.on_reset is not None:
            self.on_reset(self)
        try:
            self.abort(ctx)
        except PoolExhausted:
            # Not even one buffer for the RST: silent teardown; the
            # peer's retransmissions will be answered with stateless
            # RSTs once the pool recovers.
            self._teardown()

    def _send_fin(self, ctx):
        self.fin_seq = self.snd_nxt
        self._emit_segment(ctx, flags=FIN | ACK, seq=self.snd_nxt, seqlen=1)
        self.snd_nxt += 1
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
        self._arm_rto()

    def _emit_segment(self, ctx, flags, seq, seqlen, payload_items=None):
        """Build one segment, hand it to the IP layer, keep a clone if needed.

        ``seqlen`` is sequence-space length (payload bytes, +1 for
        SYN/FIN).  ``payload_items`` is a list of either
        ``(buffer, offset, length)`` (zero-copy frag) or
        ``(None, bytes, length)`` (copied into the linear area).
        """
        payload_items = payload_items or []
        pkt = None
        consumed = 0
        try:
            pkt = PktBuf.alloc(self.stack.tx_pool, headroom=self.stack.tx_headroom)
            self.stack.costs.charge_pktbuf_alloc(ctx)
            payload_len = 0
            for buf, data_or_off, length in payload_items:
                if buf is None:
                    # Copied bytes fill the linear area first; a jumbo (GSO)
                    # segment spills into freshly-allocated frag pages, the
                    # way the kernel builds >MTU skbs for TSO.
                    self.stack.costs.charge_copy_to_skb(ctx, length)
                    data = data_or_off
                    take = min(len(data), pkt.tailroom)
                    if take:
                        pkt.append(data[:take])
                    cursor = take
                    while cursor < len(data):
                        page = self.stack.tx_pool.alloc()
                        chunk = data[cursor:cursor + page.size]
                        page.write(0, chunk)
                        pkt.add_frag(page, 0, len(chunk))
                        page.put()  # the frag holds its own reference
                        cursor += len(chunk)
                else:
                    pkt.add_frag(buf, data_or_off, length)
                    buf.put()  # frag took its own ref; drop the gather ref
                consumed += 1
                payload_len += length
        except PoolExhausted:
            # Leak-free unwind: drop the half-built packet (releasing
            # the frag references it took) and the gather references of
            # items not yet consumed, then let the caller decide.
            if pkt is not None:
                pkt.release()
            for buf, _data_or_off, _length in payload_items[consumed:]:
                if buf is not None:
                    buf.put()
            raise
        ack_flag = bool(flags & ACK)
        header = TCPHeader(
            self.local_port, self.remote_port,
            seq=seq, ack=self.rcv_nxt if ack_flag else 0,
            flags=flags, window=self.rcv_wnd,
        )
        self.stats["tx_segments"] += 1
        self.ack_pending = False
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None
        keep = bool(payload_len) or bool(flags & (SYN | FIN))
        if keep:
            clone = pkt.clone()
            entry = _RtxEntry(seq, seqlen, flags, clone, self.stack.sim.now)
            self._rtx_insert(entry)
        self.stack.ip_output(self, pkt, header, payload_len, ctx)

    def _rtx_insert(self, entry):
        # Entries are emitted in sequence order except for retransmits,
        # which replace nothing — keep the queue sorted by seq.
        if not self.rtx_queue or entry.seq >= self.rtx_queue[-1].seq:
            self.rtx_queue.append(entry)
        else:
            index = 0
            while index < len(self.rtx_queue) and self.rtx_queue[index].seq < entry.seq:
                index += 1
            self.rtx_queue.insert(index, entry)

    def _on_delack(self):
        self._delack_timer = None
        if not self.ack_pending or self.state is TcpState.CLOSED:
            return
        self.stack.host.process_on_core(self.core, self._emit_delayed_ack)

    def _emit_delayed_ack(self, ctx):
        try:
            self._emit_segment(ctx, flags=ACK, seq=self.snd_nxt, seqlen=0)
        except PoolExhausted:
            # A pure ACK is best-effort: drop it rather than unwind the
            # timer slice; the peer's retransmission will re-trigger it.
            pass

    # ------------------------------------------------------------------ timers

    def _arm_rto(self):
        self._cancel_rto()
        if self.rtx_queue:
            self.rto_timer = self.stack.sim.schedule(self.rto, self._on_rto)

    def _cancel_rto(self):
        if self.rto_timer is not None:
            self.rto_timer.cancel()
            self.rto_timer = None

    def _on_rto(self):
        self.rto_timer = None
        if not self.rtx_queue or self.state is TcpState.CLOSED:
            return
        self.stats["rto_fires"] += 1
        entry = self.rtx_queue[0]
        entry.retries += 1
        if entry.retries > MAX_RETRIES:
            self.stack.host.process_on_core(self.core, self._give_up)
            return
        # Classic Reno RTO response: collapse to one segment, back off timer.
        self.ssthresh = max(self._flight_size() // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.dupacks = 0
        self.rto = min(self.rto * 2, MAX_RTO)
        self.stack.host.process_on_core(self.core, self._retransmit_head)
        self._arm_rto()

    def _give_up(self, ctx):
        if self.on_reset is not None:
            self.on_reset(self)
        try:
            self.abort(ctx)
        except PoolExhausted:
            # No buffer for the goodbye RST: silent teardown, same as
            # _abort_on_exhaustion — the exception must not escape the
            # timer slice that called us.
            self._teardown()

    def _retransmit_head(self, ctx):
        if not self.rtx_queue:
            return
        entry = self.rtx_queue[0]
        self.stats["retransmits"] += 1
        # Retransmit a fresh clone of the stored clone: the payload bytes
        # are the very bytes transmitted originally (shared data refcount).
        pkt = entry.clone.clone()
        payload_len = entry.length - (1 if entry.flags & (SYN | FIN) else 0)
        header = TCPHeader(
            self.local_port, self.remote_port,
            seq=entry.seq, ack=self.rcv_nxt,
            flags=entry.flags, window=self.rcv_wnd,
        )
        self.stack.ip_output(self, pkt, header, payload_len, ctx)

    # ------------------------------------------------------------------- input

    def input(self, pkt, header, payload_off, payload_len, ctx):
        """Process one received segment (already demuxed to this connection)."""
        self.stats["rx_segments"] += 1
        self.last_activity = self.stack.sim.now
        # Steady-state fast path first, then the class-level dispatch
        # table (built once, below the class body) — ``input`` runs per
        # received segment, so no per-call dict construction.
        state = self.state
        if state is TcpState.ESTABLISHED:
            self._input_established(pkt, header, payload_off, payload_len, ctx)
        else:
            handler = _INPUT_DISPATCH.get(state)
            if handler is None:
                return
            handler(self, pkt, header, payload_off, payload_len, ctx)
        # Anything consumed but not yet acknowledged by an outgoing
        # segment gets a pure ACK — immediately (quickack, default) or
        # after the delayed-ACK interval, coalescing bursts.
        if self.ack_pending and self.state is not TcpState.CLOSED:
            if self.delack_ns is None:
                self._emit_delayed_ack(ctx)
            elif self._delack_timer is None:
                self._delack_timer = self.stack.sim.schedule(
                    self.delack_ns, self._on_delack
                )

    def _input_syn_sent(self, pkt, header, payload_off, payload_len, ctx):
        if header.flags & RST:
            self._handle_rst()
            return
        if not (header.flags & SYN and header.flags & ACK):
            return
        if header.ack != self.snd_nxt:
            return
        self.irs = header.seq
        self.rcv_nxt = header.seq + 1
        self.snd_una = header.ack
        self.snd_wnd = header.window
        self._ack_rtx_queue(header.ack)
        self._cancel_rto()
        self.state = TcpState.ESTABLISHED
        self.ack_pending = True
        if self.on_established is not None:
            self.on_established(self, ctx)
        self.output(ctx)

    def _input_syn_rcvd(self, pkt, header, payload_off, payload_len, ctx):
        if header.flags & RST:
            self._handle_rst()
            return
        if header.flags & SYN:
            return  # duplicate SYN; our SYN-ACK will be retransmitted on RTO
        if header.flags & ACK and header.ack == self.snd_nxt:
            self.snd_una = header.ack
            self.snd_wnd = header.window
            self._ack_rtx_queue(header.ack)
            self._cancel_rto()
            self.state = TcpState.ESTABLISHED
            if self.on_established is not None:
                self.on_established(self, ctx)
            # The handshake ACK may carry data.
            if payload_len:
                self._input_established(pkt, header, payload_off, payload_len, ctx)

    def _input_time_wait(self, pkt, header, payload_off, payload_len, ctx):
        # Retransmitted FIN: re-ACK it.
        if header.flags & FIN:
            self.ack_pending = True

    def _input_established(self, pkt, header, payload_off, payload_len, ctx):
        if header.flags & RST:
            self._handle_rst()
            return
        if header.flags & ACK:
            self._process_ack(header, ctx)
            if self.state is TcpState.CLOSED:
                return
        if payload_len:
            self._process_data(pkt, header.seq, payload_off, payload_len, ctx)
        if header.flags & FIN:
            self._process_fin(header, payload_len, ctx)
        self.output(ctx)

    def _handle_rst(self):
        if self.on_reset is not None:
            self.on_reset(self)
        self._teardown()

    # -- ACK side --------------------------------------------------------------

    def _process_ack(self, header, ctx):
        ack = header.ack
        if ack > self.snd_nxt:
            return  # acks data never sent: ignore
        self.snd_wnd = header.window
        if ack > self.snd_una:
            acked = ack - self.snd_una
            self.snd_una = ack
            self.dupacks = 0
            self._ack_rtx_queue(ack)
            self._update_cwnd(acked)
            if self.rtx_queue:
                self._arm_rto()
            else:
                self._cancel_rto()
            self._handle_fin_progress(ctx)
        elif ack == self.snd_una and self._flight_size() > 0:
            self.dupacks += 1
            if self.dupacks == 3:
                # Fast retransmit.
                self.stats["fast_retransmits"] += 1
                self.ssthresh = max(self._flight_size() // 2, 2 * self.mss)
                self.cwnd = self.ssthresh
                self._retransmit_head(ctx)
                self._arm_rto()

    def _ack_rtx_queue(self, ack):
        """Release every fully-acked clone; this is where data refs drop."""
        kept = []
        sample = None
        for entry in self.rtx_queue:
            if entry.end <= ack:
                if entry.retries == 0:
                    sample = self.stack.sim.now - entry.sent_at
                entry.clone.release()
            else:
                kept.append(entry)
        self.rtx_queue = kept
        if sample is not None:
            self._rtt_sample(sample)

    def _rtt_sample(self, sample):
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4 * self.rttvar, MIN_RTO), MAX_RTO)

    def _update_cwnd(self, acked):
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked, self.mss)  # slow start
        else:
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)  # CA

    def _handle_fin_progress(self, ctx):
        if self.fin_seq is None or self.snd_una <= self.fin_seq:
            return
        # Our FIN is acknowledged.
        if self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
        elif self.state is TcpState.CLOSING:
            self._enter_time_wait()
        elif self.state is TcpState.LAST_ACK:
            if self.on_close is not None:
                self.on_close(self)
            self._teardown()

    # -- data side --------------------------------------------------------------

    def _process_data(self, pkt, seq, payload_off, payload_len, ctx):
        end = seq + payload_len
        if end <= self.rcv_nxt:
            # Entirely old: pure duplicate.
            self.stats["dup_segments"] += 1
            self.ack_pending = True
            return
        if seq > self.rcv_nxt + self.rcv_wnd:
            return  # beyond our window: drop silently
        if seq <= self.rcv_nxt:
            # In-order (possibly with an old prefix to skip).  Mark the
            # ACK *before* delivering so a response sent by the app in
            # the same slice piggybacks it.
            self.ack_pending = True
            skip = self.rcv_nxt - seq
            self._deliver(pkt, payload_off + skip, payload_len - skip, ctx)
            self._drain_ooo(ctx)
        else:
            # Out of order: retain the metadata in the RB-tree (§4.2).
            if seq not in self.ooo:
                pkt.retain()
                self.ooo.insert(seq, (pkt, payload_off, payload_len))
                self.ooo_bytes += payload_len
                self.stats["ooo_queued"] += 1
                self.stack.costs.charge_ooo_insert(ctx)
            else:
                self.stats["dup_segments"] += 1
            # Duplicate ACK asks the sender for the gap.
            self.ack_pending = True
        self._update_rcv_wnd()

    def _deliver(self, pkt, offset, length, ctx):
        """Hand an in-order payload slice (data-relative offset) to the app."""
        self.rcv_nxt += length
        self.stats["bytes_delivered"] += length
        self.stack.costs.charge_sock_deliver(ctx)
        if self.on_data is not None:
            self.on_data(self, RxSegment(pkt, offset, length), ctx)

    def _drain_ooo(self, ctx):
        """Splice contiguous out-of-order segments after the gap filled."""
        while self.ooo:
            key, (pkt, payload_off, payload_len) = self.ooo.min()
            if key > self.rcv_nxt:
                break
            self.ooo.delete(key)
            self.ooo_bytes -= payload_len
            end = key + payload_len
            if end <= self.rcv_nxt:
                pkt.release()  # fully duplicate
                continue
            skip = self.rcv_nxt - key
            self._deliver(pkt, payload_off + skip, payload_len - skip, ctx)
            pkt.release()

    def _update_rcv_wnd(self):
        self.rcv_wnd = max(0, self.rcv_wnd_limit - self.ooo_bytes)

    def _process_fin(self, header, payload_len, ctx):
        # The FIN occupies the sequence slot after the segment's payload.
        fin_seq = header.seq + payload_len
        if self.rcv_nxt < fin_seq:
            return  # data gap before the FIN; wait for retransmission
        if self.state in (TcpState.CLOSE_WAIT, TcpState.LAST_ACK,
                          TcpState.CLOSING, TcpState.TIME_WAIT):
            self.ack_pending = True  # duplicate FIN
            return
        if self.rcv_nxt > fin_seq:
            self.ack_pending = True  # FIN already consumed
            return
        self.rcv_nxt += 1
        self.ack_pending = True
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
            if self.on_close is not None:
                self.on_close(self)
        elif self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.CLOSING
        elif self.state is TcpState.FIN_WAIT_2:
            self._enter_time_wait()

    def _enter_time_wait(self):
        self.state = TcpState.TIME_WAIT
        self._cancel_rto()
        if self.on_close is not None:
            self.on_close(self)
        self.time_wait_timer = self.stack.sim.schedule(
            TIME_WAIT_NS, self._teardown
        )


#: state -> unbound input handler, shared by every connection.
#: ESTABLISHED (and its fast path in :meth:`TcpConnection.input`) is
#: listed too so the table is the single source of truth for which
#: states accept segments; CLOSED and LISTEN intentionally absent.
_INPUT_DISPATCH = {
    TcpState.SYN_SENT: TcpConnection._input_syn_sent,
    TcpState.SYN_RCVD: TcpConnection._input_syn_rcvd,
    TcpState.ESTABLISHED: TcpConnection._input_established,
    TcpState.FIN_WAIT_1: TcpConnection._input_established,
    TcpState.FIN_WAIT_2: TcpConnection._input_established,
    TcpState.CLOSE_WAIT: TcpConnection._input_established,
    TcpState.CLOSING: TcpConnection._input_established,
    TcpState.LAST_ACK: TcpConnection._input_established,
    TcpState.TIME_WAIT: TcpConnection._input_time_wait,
}
