"""Network fabric: links through a store-and-forward switch.

Models the paper's testbed topology — two hosts on 25 GbE through one
switch — as serialisation + propagation + switch latency, with per-port
egress serialisation (a port transmits one frame at a time, so bursts
queue).  A :class:`LinkFaults` policy injects loss, reordering,
duplication and corruption for the transport-correctness property
tests; benchmarks run fault-free, as the paper's LAN effectively does.
"""

from repro.sim.units import MICROS


class LinkFaults:
    """Random fault injection, applied per frame on delivery."""

    def __init__(self, rng, loss=0.0, reorder=0.0, duplicate=0.0, corrupt=0.0,
                 reorder_delay_ns=50 * MICROS):
        self.rng = rng
        self.loss = loss
        self.reorder = reorder
        self.duplicate = duplicate
        self.corrupt = corrupt
        self.reorder_delay_ns = reorder_delay_ns
        self.dropped = 0
        self.reordered = 0
        self.duplicated = 0
        self.corrupted = 0

    def plan(self, frame):
        """Decide this frame's fate.

        Returns a list of (extra_delay_ns, frame_bytes) deliveries —
        empty for a drop, two entries for a duplicate.
        """
        if self.rng.random() < self.loss:
            self.dropped += 1
            return []
        deliveries = [(0.0, frame)]
        if self.rng.random() < self.corrupt:
            self.corrupted += 1
            corrupted = bytearray(frame)
            victim = self.rng.randrange(len(corrupted))
            corrupted[victim] ^= 1 << self.rng.randrange(8)
            deliveries = [(0.0, bytes(corrupted))]
        if self.rng.random() < self.reorder:
            self.reordered += 1
            delay = self.rng.uniform(0, self.reorder_delay_ns)
            deliveries = [(delay, data) for _, data in deliveries]
        if self.rng.random() < self.duplicate:
            self.duplicated += 1
            deliveries = deliveries + [(d + 1.0, data) for d, data in deliveries]
        return deliveries


class Link:
    """One direction of attachment between a NIC port and the switch."""

    __slots__ = ("bandwidth_bps", "propagation_ns", "busy_until")

    def __init__(self, bandwidth_gbps, propagation_ns):
        self.bandwidth_bps = bandwidth_gbps * 1e9
        self.propagation_ns = propagation_ns
        self.busy_until = 0.0

    def serialization_ns(self, nbytes):
        return nbytes * 8 / self.bandwidth_bps * 1e9

    def transmit(self, now, nbytes):
        """Serialise a frame; returns its arrival time at the far end."""
        start = max(now, self.busy_until)
        done = start + self.serialization_ns(nbytes)
        self.busy_until = done
        return done + self.propagation_ns


class Fabric:
    """A single switch interconnecting registered NICs by IP address."""

    def __init__(self, sim, bandwidth_gbps=25.0, propagation_ns=200.0,
                 switch_ns=300.0, faults=None):
        self.sim = sim
        self.bandwidth_gbps = bandwidth_gbps
        self.propagation_ns = propagation_ns
        self.switch_ns = switch_ns
        self.faults = faults
        self._ports = {}      # ip -> (nic, uplink Link, downlink Link)
        self.frames = 0
        self.bytes = 0
        #: Optional live-observability hook (repro.obs.Recorder).
        self.recorder = None
        #: Delivery taps: callables (arrival_ns, src_ip, dst_ip, bytes)
        #: invoked once per *delivered* frame copy (post fault plan),
        #: i.e. what the destination NIC will actually see, when.
        self._taps = []

    def register(self, nic):
        """Attach a NIC; its IP becomes its fabric address."""
        if nic.ip in self._ports:
            raise ValueError(f"duplicate fabric address {nic.ip}")
        uplink = Link(self.bandwidth_gbps, self.propagation_ns)
        downlink = Link(self.bandwidth_gbps, self.propagation_ns)
        self._ports[nic.ip] = (nic, uplink, downlink)
        return nic

    def replace(self, nic):
        """Swap the NIC behind an address (cluster reseed: a rebuilt
        standby takes over the dead host's fabric port).  Fresh links:
        the old port's serialisation backlog died with its host."""
        if nic.ip not in self._ports:
            raise ValueError(f"no fabric port at {nic.ip} to replace")
        uplink = Link(self.bandwidth_gbps, self.propagation_ns)
        downlink = Link(self.bandwidth_gbps, self.propagation_ns)
        self._ports[nic.ip] = (nic, uplink, downlink)
        return nic

    def add_tap(self, tap):
        """Attach a delivery tap (see :mod:`repro.capture.tap`)."""
        self._taps.append(tap)
        return tap

    def remove_tap(self, tap):
        self._taps.remove(tap)

    def transmit(self, src_nic, dst_ip, frame):
        """Carry ``frame`` from ``src_nic`` to the NIC owning ``dst_ip``."""
        self.frames += 1
        self.bytes += len(frame)
        if dst_ip not in self._ports:
            return  # no such host: the LAN silently blackholes it
        _, uplink, _ = self._ports[src_nic.ip]
        dst_nic, _, downlink = self._ports[dst_ip]

        deliveries = [(0.0, frame)] if self.faults is None else self.faults.plan(frame)
        for extra_delay, data in deliveries:
            # Store-and-forward: serialise onto the uplink, cross the
            # switch, serialise again onto the destination's downlink.
            # Reorder-fault delay applies after the links, so a delayed
            # frame really is overtaken by its successors.
            at_switch = uplink.transmit(self.sim.now, len(data))
            at_switch += self.switch_ns
            arrival = downlink.transmit(at_switch, len(data))
            if self.recorder is not None:
                self.recorder.record_wire(arrival + extra_delay - self.sim.now)
            for tap in self._taps:
                tap(arrival + extra_delay, src_nic.ip, dst_ip, data)
            self.sim.at(arrival + extra_delay, dst_nic.on_wire, data)

    def one_way_latency_ns(self, nbytes):
        """Unloaded one-way latency for a frame of ``nbytes`` (for reports)."""
        ser = nbytes * 8 / (self.bandwidth_gbps * 1e9) * 1e9
        return 2 * ser + 2 * self.propagation_ns + self.switch_ns

    def __repr__(self):
        return f"<Fabric {len(self._ports)} ports {self.bandwidth_gbps}Gbps>"
