"""Network substrate: packets, protocols, NICs, fabric and host stacks.

This package is a from-scratch software network stack in the image of
the one the paper builds on (Linux TCP/IP + PASTE):

- :mod:`repro.net.checksum` — internet checksum and CRC32C.
- :mod:`repro.net.headers` — Ethernet/IPv4/TCP wire codecs.
- :mod:`repro.net.pktbuf` — ``sk_buff``-analog packet metadata
  (Figure 3 of the paper): refcounted shared data, clones, frag pages,
  timestamps, header offsets.
- :mod:`repro.net.pool` — packet-buffer pools over DRAM or PM regions
  (a PM-backed pool is PASTE's persistent packet buffer).
- :mod:`repro.net.rbtree` — the red-black tree TCP keeps out-of-order
  segments in (§4.2 cites it as evidence of packet-metadata
  flexibility).
- :mod:`repro.net.tcp` — reliable transport: handshake, segmentation,
  cumulative/selective-repeat ACKing, retransmission from cloned
  packet metadata, out-of-order reassembly, Reno congestion control.
- :mod:`repro.net.nic` — NIC model with checksum offload, TSO and
  hardware timestamps.
- :mod:`repro.net.fabric` — links and a switch, with loss/reorder/
  corruption injection for property tests.
- :mod:`repro.net.stack` — the host stack: sockets, demux, busy-poll
  run-to-completion processing, PASTE mode (PM packet pools +
  zero-copy buffer extraction).
- :mod:`repro.net.http` — the HTTP/1.1 subset the paper's workload
  (wrk PUT/GET) speaks.
"""

from repro.net.checksum import crc32c, internet_checksum
from repro.net.pool import BufferPool, PacketBuffer, PoolExhausted
from repro.net.pktbuf import PktBuf
from repro.net.rbtree import RBTree
from repro.net.headers import EthernetHeader, IPv4Header, TCPHeader
from repro.net.fabric import Fabric, Link, LinkFaults
from repro.net.nic import Nic, NicFeatures
from repro.net.tcp import TcpConnection, TcpState
from repro.net.stack import Host, NetworkStack, Socket

__all__ = [
    "crc32c",
    "internet_checksum",
    "BufferPool",
    "PacketBuffer",
    "PoolExhausted",
    "PktBuf",
    "RBTree",
    "EthernetHeader",
    "IPv4Header",
    "TCPHeader",
    "Fabric",
    "Link",
    "LinkFaults",
    "Nic",
    "NicFeatures",
    "TcpConnection",
    "TcpState",
    "Host",
    "NetworkStack",
    "Socket",
]
