"""Checksums: the RFC 1071 internet checksum and CRC32C.

Two checksums matter to the paper:

- The **TCP/IP internet checksum** protects every segment on the wire.
  Modern NICs compute and verify it in hardware ("checksum offload",
  enabled on both of the paper's machines), so it is free to the CPU —
  which is exactly why §4.2 proposes reusing it as the stored-data
  integrity checksum.
- **CRC32C** is what LevelDB (and our NoveLSM) computes in software
  over every value it stores: the 1.77 µs row of Table 1.

Both are implemented for real here — benches charge modeled cost, but
tests verify actual bit-level behaviour (corruption detection, known
vectors).
"""

# CRC32C (Castagnoli) table, generated once at import.
_CRC32C_POLY = 0x82F63B78
_CRC32C_TABLE = []
for _i in range(256):
    _crc = _i
    for _ in range(8):
        _crc = (_crc >> 1) ^ _CRC32C_POLY if _crc & 1 else _crc >> 1
    _CRC32C_TABLE.append(_crc)


def crc32c(data, seed=0):
    """CRC32C (Castagnoli) of ``data``; matches the common library value."""
    crc = seed ^ 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def internet_checksum(data, seed=0):
    """RFC 1071 16-bit one's-complement sum of ``data``.

    ``seed`` lets callers fold in a pseudo-header sum computed
    separately (as TCP does).
    """
    total = seed
    length = len(data)
    # Sum 16-bit big-endian words.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length & 1:
        total += data[-1] << 8
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def checksum_partial(data, seed=0):
    """Unfolded one's-complement sum, for incremental computation."""
    total = seed
    length = len(data)
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length & 1:
        total += data[-1] << 8
    return total


def checksum_finish(partial):
    """Fold an accumulated partial sum and complement it."""
    while partial >> 16:
        partial = (partial & 0xFFFF) + (partial >> 16)
    return (~partial) & 0xFFFF


def verify_internet_checksum(data, seed=0):
    """True iff ``data`` (which embeds its checksum field) sums to zero."""
    total = checksum_partial(data, seed)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
