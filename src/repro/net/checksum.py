"""Checksums: the RFC 1071 internet checksum and CRC32C.

Two checksums matter to the paper:

- The **TCP/IP internet checksum** protects every segment on the wire.
  Modern NICs compute and verify it in hardware ("checksum offload",
  enabled on both of the paper's machines), so it is free to the CPU —
  which is exactly why §4.2 proposes reusing it as the stored-data
  integrity checksum.
- **CRC32C** is what LevelDB (and our NoveLSM) computes in software
  over every value it stores: the 1.77 µs row of Table 1.

Both are implemented for real here — benches charge modeled cost, but
tests verify actual bit-level behaviour (corruption detection, known
vectors).

Implementation note: these run on the wall-clock hot path of every
simulated frame and every stored value, so the word loops are hoisted
into ``struct`` bulk unpacks and the CRC uses slicing-by-8 with a
small memo for repeated values.  The *results* are bit-identical to
the reference byte loops (tests/test_net_checksum.py pins both against
known vectors and a reference implementation).
"""

import struct

# CRC32C (Castagnoli) slicing-by-8 tables, generated once at import.
# _CRC32C_TABLE (table 0) is the classic byte-at-a-time table; tables
# 1..7 extend it so eight input bytes fold in one step.
_CRC32C_POLY = 0x82F63B78
_CRC32C_TABLE = []
for _i in range(256):
    _crc = _i
    for _ in range(8):
        _crc = (_crc >> 1) ^ _CRC32C_POLY if _crc & 1 else _crc >> 1
    _CRC32C_TABLE.append(_crc)

_CRC32C_SLICES = [list(_CRC32C_TABLE)]
for _k in range(1, 8):
    _prev = _CRC32C_SLICES[_k - 1]
    _CRC32C_SLICES.append(
        [_CRC32C_TABLE[_prev[_i] & 0xFF] ^ (_prev[_i] >> 8)
         for _i in range(256)]
    )
_T0, _T1, _T2, _T3, _T4, _T5, _T6, _T7 = _CRC32C_SLICES

#: Bounded value -> CRC memo.  Stores repeatedly checksum the same
#: value bytes (wrk reuses one payload per run; LevelDB-style verify
#: re-CRCs what was just written), and a CRC is a pure function of its
#: input, so caching is safe.  Cleared wholesale when full.
_CRC_MEMO = {}
_CRC_MEMO_MAX = 512
_CRC_MEMO_VALUE_MAX = 1 << 16


def crc32c(data, seed=0):
    """CRC32C (Castagnoli) of ``data``; matches the common library value."""
    memo_key = None
    if seed == 0 and type(data) is bytes and len(data) <= _CRC_MEMO_VALUE_MAX:
        memo_key = data
        cached = _CRC_MEMO.get(memo_key)
        if cached is not None:
            return cached
    crc = seed ^ 0xFFFFFFFF
    length = len(data)
    nquads = length >> 3
    offset = nquads << 3
    if nquads:
        for (quad,) in struct.iter_unpack("<Q", memoryview(data)[:offset]):
            quad ^= crc
            low = quad & 0xFFFFFFFF
            high = quad >> 32
            crc = (
                _T7[low & 0xFF]
                ^ _T6[(low >> 8) & 0xFF]
                ^ _T5[(low >> 16) & 0xFF]
                ^ _T4[low >> 24]
                ^ _T3[high & 0xFF]
                ^ _T2[(high >> 8) & 0xFF]
                ^ _T1[(high >> 16) & 0xFF]
                ^ _T0[high >> 24]
            )
    table = _CRC32C_TABLE
    for index in range(offset, length):
        crc = table[(crc ^ data[index]) & 0xFF] ^ (crc >> 8)
    crc ^= 0xFFFFFFFF
    if memo_key is not None:
        if len(_CRC_MEMO) >= _CRC_MEMO_MAX:
            _CRC_MEMO.clear()
        _CRC_MEMO[memo_key] = crc
    return crc


def internet_checksum(data, seed=0):
    """RFC 1071 16-bit one's-complement sum of ``data``.

    ``seed`` lets callers fold in a pseudo-header sum computed
    separately (as TCP does).
    """
    total = checksum_partial(data, seed)
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def checksum_partial(data, seed=0):
    """Unfolded one's-complement sum, for incremental computation."""
    total = seed
    length = len(data)
    nwords = length >> 1
    if nwords:
        # Sum 16-bit big-endian words in one bulk unpack; identical to
        # accumulating (data[i] << 8) | data[i+1] per word.
        total += sum(struct.unpack_from("!%dH" % nwords, data))
    if length & 1:
        total += data[-1] << 8
    return total


def checksum_finish(partial):
    """Fold an accumulated partial sum and complement it."""
    while partial >> 16:
        partial = (partial & 0xFFFF) + (partial >> 16)
    return (~partial) & 0xFFFF


def verify_internet_checksum(data, seed=0):
    """True iff ``data`` (which embeds its checksum field) sums to zero."""
    total = checksum_partial(data, seed)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
