"""``sk_buff``-analog packet metadata (Figure 3 of the paper).

A :class:`PktBuf` is the network stack's in-memory representation of a
packet: a metadata structure pointing at refcounted payload storage,
with timestamps, header offsets, parsed-protocol attachments, clone
support and optional frag pages for data larger than one buffer.

The two refcounts from the paper's Figure 3 are both here:

- the *metadata* refcount (``PktBuf.refcount``) counts users of this
  metadata instance (e.g. the socket queue and a packet-capture tap);
- the *data* refcount lives on each :class:`~repro.net.pool.PacketBuffer`
  and is shared between a packet and its clones — this is how TCP keeps
  transmitted-but-unacked payload alive for retransmission while the
  driver has long released its clone.

Layout of the linear part inside its buffer slot::

    [headroom][l2][l3][l4][payload][tailroom]
    ^slot 0   ^data_off              ^data_off+data_len
"""

from repro.sim.context import NULL_CONTEXT

DEFAULT_HEADROOM = 64


class Frag:
    """A page fragment: a slice of a refcounted buffer."""

    __slots__ = ("buf", "offset", "length")

    def __init__(self, buf, offset, length):
        if offset < 0 or length < 0 or offset + length > buf.size:
            raise IndexError("frag outside its buffer")
        self.buf = buf
        self.offset = offset
        self.length = length

    def read(self):
        return self.buf.read(self.offset, self.length)

    def __repr__(self):
        return f"<Frag {self.length}B @slot{self.buf.slot}+{self.offset}>"


class PktBuf:
    """Packet metadata: points at shared payload, carries rich metadata."""

    __slots__ = (
        "buf", "data_off", "data_len", "frags",
        "refcount",
        "tstamp", "hw_tstamp",
        "l2_off", "l3_off", "l4_off",
        "eth", "ip", "tcp",
        "csum_verified", "wire_csum",
        "freed",
    )

    def __init__(self, buf, data_off=DEFAULT_HEADROOM):
        self.buf = buf
        self.data_off = data_off
        self.data_len = 0
        self.frags = []
        self.refcount = 1
        #: Software timestamp (set by the stack on rx/tx).
        self.tstamp = None
        #: Hardware timestamp (set by the NIC when hw timestamping is on).
        self.hw_tstamp = None
        self.l2_off = None
        self.l3_off = None
        self.l4_off = None
        # Parsed header attachments (set by the stack's rx path).
        self.eth = None
        self.ip = None
        self.tcp = None
        #: True when the NIC verified the TCP checksum in hardware.
        self.csum_verified = False
        #: The raw TCP checksum carried on the wire (reusable as a
        #: storage integrity checksum, §4.2).
        self.wire_csum = None
        self.freed = False

    # -- construction ---------------------------------------------------------

    @classmethod
    def alloc(cls, pool, headroom=DEFAULT_HEADROOM):
        """Allocate a fresh packet with ``headroom`` bytes reserved."""
        buf = pool.alloc()
        if headroom >= buf.size:
            raise ValueError("headroom larger than buffer slot")
        return cls(buf, headroom)

    # -- data manipulation ----------------------------------------------------

    @property
    def headroom(self):
        return self.data_off

    @property
    def tailroom(self):
        return self.buf.size - self.data_off - self.data_len

    @property
    def total_len(self):
        """Linear + all frags, the packet's full payload length."""
        return self.data_len + sum(frag.length for frag in self.frags)

    def append(self, data):
        """Add bytes at the tail of the linear area (skb_put)."""
        self._alive()
        if len(data) > self.tailroom:
            raise IndexError(
                f"append of {len(data)}B exceeds tailroom {self.tailroom}"
            )
        self.buf.write(self.data_off + self.data_len, data)
        self.data_len += len(data)
        return self

    def push(self, data):
        """Prepend bytes into headroom (skb_push) — how headers are added."""
        self._alive()
        if len(data) > self.headroom:
            raise IndexError(
                f"push of {len(data)}B exceeds headroom {self.headroom}"
            )
        self.data_off -= len(data)
        self.data_len += len(data)
        self.buf.write(self.data_off, data)
        return self

    def pull(self, length):
        """Strip bytes from the head (skb_pull) — how headers are consumed."""
        self._alive()
        if length > self.data_len:
            raise IndexError(f"pull of {length}B exceeds data_len {self.data_len}")
        self.data_off += length
        self.data_len -= length
        return self

    def trim(self, length):
        """Shrink the linear data to ``length`` bytes (skb_trim)."""
        self._alive()
        if length > self.data_len:
            raise IndexError("trim cannot grow a packet")
        self.data_len = length
        return self

    def linear_bytes(self):
        """The linear data area as bytes."""
        self._alive()
        return self.buf.read(self.data_off, self.data_len)

    def payload_slice(self, offset, length):
        """Bytes from the linear payload at ``offset`` (relative to data)."""
        self._alive()
        if offset < 0 or offset + length > self.data_len:
            raise IndexError("slice outside linear data")
        return self.buf.read(self.data_off + offset, length)

    def add_frag(self, buf, offset, length):
        """Attach a page fragment; takes a data reference on ``buf``."""
        self._alive()
        buf.get()
        self.frags.append(Frag(buf, offset, length))
        return self

    def to_wire(self):
        """Linearised full packet bytes (what serialises onto the fabric)."""
        self._alive()
        if not self.frags:
            return self.linear_bytes()
        parts = [self.linear_bytes()]
        parts.extend(frag.read() for frag in self.frags)
        return b"".join(parts)

    # -- lifetime -------------------------------------------------------------

    def clone(self):
        """Share the payload, copy the metadata (skb_clone).

        The clone holds its own data references; either side may be
        freed, pulled or retransmitted without affecting the other's
        view of the payload bytes.
        """
        self._alive()
        copy = PktBuf(self.buf.get(), self.data_off)
        copy.data_len = self.data_len
        for frag in self.frags:
            copy.frags.append(Frag(frag.buf.get(), frag.offset, frag.length))
        copy.tstamp = self.tstamp
        copy.hw_tstamp = self.hw_tstamp
        copy.l2_off = self.l2_off
        copy.l3_off = self.l3_off
        copy.l4_off = self.l4_off
        copy.eth = self.eth
        copy.ip = self.ip
        copy.tcp = self.tcp
        copy.csum_verified = self.csum_verified
        copy.wire_csum = self.wire_csum
        return copy

    def retain(self):
        """Take a metadata reference (e.g. socket queue + capture tap)."""
        self._alive()
        self.refcount += 1
        return self

    def release(self):
        """Drop a metadata reference; at zero, drop all data references."""
        self._alive()
        self.refcount -= 1
        if self.refcount == 0:
            self.freed = True
            self.buf.put()
            for frag in self.frags:
                frag.buf.put()
        return self.refcount

    def steal_buffer(self):
        """Take ownership of the underlying data buffer (PASTE extract).

        Returns ``(buffer, data_off, data_len)`` with an extra data
        reference held by the caller; the PktBuf remains valid and is
        released independently.  This is the zero-copy handoff: the app
        ends up owning payload that is already in the (PM) pool.
        """
        self._alive()
        return self.buf.get(), self.data_off, self.data_len

    def persist_payload(self, ctx=NULL_CONTEXT, category="pm.flush"):
        """Flush+fence the payload bytes (PM-backed pools only)."""
        self._alive()
        lines = self.buf.flush(self.data_off, self.data_len, ctx, category)
        for frag in self.frags:
            lines += frag.buf.flush(frag.offset, frag.length, ctx, category)
        self.buf.pool.region.fence(ctx, category)
        return lines

    def _alive(self):
        if self.freed:
            raise RuntimeError("use-after-free of packet metadata")

    def __repr__(self):
        return (
            f"<PktBuf len={self.data_len}+{sum(f.length for f in self.frags)} "
            f"ref={self.refcount} slot={self.buf.slot}>"
        )
