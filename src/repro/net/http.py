"""The HTTP/1.1 subset the paper's workload speaks.

The measurement study drives the server with ``wrk`` over HTTP/TCP:
``PUT /<key>`` with the value as the body, ``GET /<key>`` to read.
This module provides an incremental parser (requests can span TCP
segments, and several can share one segment) plus request/response
builders.

For PASTE-style zero-copy, the parser keeps the body as a list of
*segment slices* — references into the packet buffers the payload
arrived in — rather than joining bytes.  A classic store joins them
(that join is the copy Table 1 prices at 1.14 µs); a packet-native
store adopts the buffers directly.
"""

HEADER_END = b"\r\n\r\n"
MAX_HEADER = 8192

#: Largest body a request may declare.  A Content-Length beyond this
#: would pin more packet buffers than any legitimate request needs, so
#: the parser rejects it up front (the server answers 400) instead of
#: letting one absurd header drain the rx pool.
MAX_BODY = 8 << 20


class HttpError(ValueError):
    """Malformed HTTP traffic."""


class BodySlice:
    """A body fragment: ``length`` payload bytes at ``offset`` in a segment.

    Holds a retained reference to the segment's packet metadata; call
    :meth:`release` when done (or keep it — that is the point).
    """

    __slots__ = ("segment", "offset", "length")

    def __init__(self, segment, offset, length):
        self.segment = segment
        self.offset = offset
        self.length = length

    def bytes(self):
        return self.segment.pktbuf.payload_slice(
            self.segment.offset + self.offset, self.length
        )

    def buffer_ref(self):
        """(packet_buffer, buffer_offset, length) for zero-copy adoption."""
        pktbuf = self.segment.pktbuf
        start = pktbuf.data_off + self.segment.offset + self.offset
        return pktbuf.buf, start, self.length

    def release(self):
        self.segment.release()

    def __repr__(self):
        return f"<BodySlice {self.length}B>"


class HttpMessage:
    """One parsed request or response."""

    __slots__ = ("method", "path", "status", "headers", "body_slices", "pktbuf", "hw_tstamp", "wire_csum")

    def __init__(self, method=None, path=None, status=None, headers=None):
        self.method = method
        self.path = path
        self.status = status
        self.headers = headers or {}
        #: Zero-copy body: list of :class:`BodySlice` (each holds a
        #: retained packet-metadata reference).
        self.body_slices = []
        #: Packet metadata of the segment that *completed* this message
        #: (carries the NIC hardware timestamp and wire checksum the
        #: proposal reuses; retained, release via :meth:`release`).
        self.pktbuf = None
        self.hw_tstamp = None
        self.wire_csum = None

    @property
    def body(self):
        """The body as contiguous bytes (copies — the classic path)."""
        return b"".join(chunk.bytes() for chunk in self.body_slices)

    @property
    def content_length(self):
        return sum(chunk.length for chunk in self.body_slices)

    def release(self):
        """Drop every packet reference this message holds."""
        for chunk in self.body_slices:
            chunk.release()
        self.body_slices = []
        if self.pktbuf is not None:
            self.pktbuf.release()
            self.pktbuf = None

    def __repr__(self):
        what = self.method or f"status {self.status}"
        return f"<HttpMessage {what} {self.path or ''} body={self.content_length}B>"


def build_request(method, path, body=b""):
    """Serialize a request; PUT/POST carry a Content-Length body."""
    head = f"{method} {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    return head.encode("ascii") + body


def build_response(status, body=b"", extra_headers=None):
    """Serialize a response."""
    reason = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
              500: "Internal Server Error", 503: "Service Unavailable",
              507: "Insufficient Storage"}
    lines = [f"HTTP/1.1 {status} {reason.get(status, 'Unknown')}"]
    for key, value in (extra_headers or {}).items():
        lines.append(f"{key}: {value}")
    lines.append(f"Content-Length: {len(body)}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


class HttpParser:
    """Incremental message parser fed with received TCP segments.

    Feed :class:`~repro.net.tcp.RxSegment` objects; completed
    :class:`HttpMessage` objects come back.  Header bytes are copied
    (they are tiny); body bytes are *referenced* as :class:`BodySlice`
    views into the original segments, whose packet metadata is retained
    for exactly as long as the message lives.
    """

    def __init__(self, is_response=False):
        self.is_response = is_response
        self._head = bytearray()
        self._message = None
        self._body_remaining = 0

    @property
    def pending(self):
        """True while a message is partially parsed (headers or body)."""
        return self._message is not None or bool(self._head)

    def feed(self, segment, ctx=None, costs=None):
        """Parse one received segment; returns completed messages."""
        if costs is not None and ctx is not None:
            costs.charge_http_parse(ctx, segment.length)
        completed = []
        offset = 0
        try:
            while offset < segment.length:
                if self._message is None:
                    offset = self._feed_head(segment, offset)
                    if self._message is None:
                        break  # headers still incomplete; wait for more
                    if self._body_remaining == 0:
                        completed.append(self._finish(segment))
                        continue
                take = min(self._body_remaining, segment.length - offset)
                if take > 0:
                    segment.retain()
                    self._message.body_slices.append(BodySlice(segment, offset, take))
                    self._body_remaining -= take
                    offset += take
                if self._body_remaining == 0:
                    completed.append(self._finish(segment))
                else:
                    break
        except HttpError:
            # Pipelined garbage after well-formed requests: release the
            # completed messages' packet references before propagating,
            # so a parse error is leak-free (the caller resets us).
            for message in completed:
                message.release()
            raise
        return completed

    def _finish(self, segment):
        message = self._message
        self._message = None
        message.pktbuf = segment.pktbuf.retain()
        message.hw_tstamp = segment.pktbuf.hw_tstamp
        message.wire_csum = segment.pktbuf.wire_csum
        return message

    def _feed_head(self, segment, offset):
        """Accumulate header bytes; returns the new offset."""
        chunk = segment.pktbuf.payload_slice(
            segment.offset + offset, segment.length - offset
        )
        self._head.extend(chunk)
        end = self._head.find(HEADER_END)
        if end < 0:
            if len(self._head) > MAX_HEADER:
                raise HttpError("header block too large")
            return segment.length
        consumed_now = len(chunk) - (len(self._head) - (end + len(HEADER_END)))
        header_block = bytes(self._head[:end])
        self._head = bytearray()
        self._message = self._parse_head(header_block)
        self._body_remaining = self._content_length(self._message)
        return offset + consumed_now

    @staticmethod
    def _content_length(message):
        raw = message.headers.get("content-length", "0")
        try:
            length = int(raw)
        except ValueError:
            raise HttpError(f"unparseable Content-Length {raw!r}") from None
        if length < 0:
            raise HttpError(f"negative Content-Length {length}")
        if length > MAX_BODY:
            raise HttpError(
                f"Content-Length {length} exceeds the {MAX_BODY}-byte limit"
            )
        return length

    def reset(self):
        """Drop partial-parse state (and its packet references).

        Call after :meth:`feed` raises: a half-assembled message may
        already hold retained body slices, and the stream position is
        unrecoverable — the server answers 400 and closes.
        """
        if self._message is not None:
            self._message.release()
            self._message = None
        self._head = bytearray()
        self._body_remaining = 0

    def _parse_head(self, block):
        lines = block.decode("ascii", errors="replace").split("\r\n")
        parts = lines[0].split(" ")
        if self.is_response:
            if len(parts) < 2 or not parts[0].startswith("HTTP/"):
                raise HttpError(f"bad status line {lines[0]!r}")
            try:
                status = int(parts[1])
            except ValueError:
                raise HttpError(f"bad status line {lines[0]!r}") from None
            message = HttpMessage(status=status)
        else:
            if len(parts) != 3 or not parts[2].startswith("HTTP/") \
                    or not parts[0] or not parts[1]:
                raise HttpError(f"bad request line {lines[0]!r}")
            message = HttpMessage(method=parts[0], path=parts[1])
        for line in lines[1:]:
            if not line:
                continue
            if ":" not in line:
                raise HttpError(f"bad header line {line!r}")
            key, value = line.split(":", 1)
            message.headers[key.strip().lower()] = value.strip()
        return message
