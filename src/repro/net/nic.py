"""NIC model with the offloads the paper leans on (§5.2).

- **Checksum offload** (both machines in the paper enable it): on
  transmit the NIC computes the TCP checksum and patches it into the
  frame; on receive it verifies the checksum and marks the packet
  metadata, so the CPU never touches the bytes for integrity.  The
  verified wire checksum is left on the metadata (``wire_csum``) —
  that is the value §4.2 proposes storing instead of recomputing a
  CRC in the storage stack.
- **Hardware timestamps**: arrival time stamped into ``hw_tstamp``,
  reusable as the storage timestamp.
- **TSO**: a payload larger than MSS is split into wire frames by the
  NIC, with sequence numbers and checksums fixed up per frame.

Received frames are DMA'd into buffers from the NIC's rx pool.  When
the pool lives in persistent memory, this *is* PASTE: payload lands in
PM before software ever runs, so persistence needs only a flush.
"""

import struct

from repro.net.checksum import checksum_finish, checksum_partial
from repro.net.headers import (
    ETH_HEADER_LEN,
    IPV4_HEADER_LEN,
    IPPROTO_TCP,
    TCP_HEADER_LEN,
    IPv4Header,
)
from repro.net.pktbuf import PktBuf

HEADERS_LEN = ETH_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN


class NicFeatures:
    """Offload capability flags."""

    def __init__(self, tx_csum_offload=True, rx_csum_offload=True,
                 hw_timestamps=True, tso=False):
        self.tx_csum_offload = tx_csum_offload
        self.rx_csum_offload = rx_csum_offload
        self.hw_timestamps = hw_timestamps
        self.tso = tso

    def __repr__(self):
        flags = []
        if self.tx_csum_offload:
            flags.append("txcsum")
        if self.rx_csum_offload:
            flags.append("rxcsum")
        if self.hw_timestamps:
            flags.append("hwts")
        if self.tso:
            flags.append("tso")
        return f"<NicFeatures {'+'.join(flags) or 'none'}>"


#: Offset of the L4 checksum field within the L4 header, per protocol.
#: TCP keeps it at 16; the Homa-like transport (IP proto 0xFD) at 2.
_L4_CSUM_OFFSET = {IPPROTO_TCP: 16, 0xFD: 2}

_U16 = struct.Struct("!H")
_U32x2 = struct.Struct("!II")

_IP_PROTO_OFF = ETH_HEADER_LEN + 9
_IP_TOTAL_LEN_OFF = ETH_HEADER_LEN + 2
_IP_SRC_OFF = ETH_HEADER_LEN + 12


def _l4_csum_info(frame):
    """(field_frame_offset, stored_value, computed_value) for a frame.

    One pass over the headers for both the stored checksum field and
    the checksum the frame *should* carry (its field zeroed) — the tx
    and rx offload paths each need both.  Returns None for protocols
    the offload does not know; raises ValueError on malformed headers
    (like the header codecs would).
    """
    if len(frame) < ETH_HEADER_LEN + IPV4_HEADER_LEN:
        raise ValueError("truncated IPv4 header")
    if frame[ETH_HEADER_LEN] >> 4 != 4:
        raise ValueError(f"not IPv4 (version={frame[ETH_HEADER_LEN] >> 4})")
    proto = frame[_IP_PROTO_OFF]
    csum_off = _L4_CSUM_OFFSET.get(proto)
    if csum_off is None:
        return None
    (total_len,) = _U16.unpack_from(frame, _IP_TOTAL_LEN_OFF)
    src, dst = _U32x2.unpack_from(frame, _IP_SRC_OFF)
    l4_len = total_len - IPV4_HEADER_LEN
    l4_start = ETH_HEADER_LEN + IPV4_HEADER_LEN
    position = l4_start + csum_off
    (stored,) = _U16.unpack_from(frame, position)
    pseudo = ((src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF)
              + proto + l4_len)
    # The checksum field sits on a word boundary, so its contribution
    # to the unfolded word sum is exactly ``stored``; subtracting it
    # equals summing with the field zeroed.
    partial = checksum_partial(frame[l4_start:l4_start + l4_len], pseudo)
    return position, stored, checksum_finish(partial - stored)


def _l4_checksum_of_frame(frame):
    """Compute the L4 checksum a frame *should* carry (its field zeroed).

    Supports every protocol the NIC offload knows (TCP and the
    Homa-like transport); returns None for anything else.
    """
    info = _l4_csum_info(frame)
    return info[2] if info is not None else None


def _l4_csum_field(frame):
    """(field_frame_offset, stored_value) of the L4 checksum, or None."""
    info = _l4_csum_info(frame)
    return (info[0], info[1]) if info is not None else None


def _tcp_checksum_of_frame(frame):
    """Backwards-compatible alias used by the storage layer."""
    return _l4_checksum_of_frame(frame)


class Nic:
    """One NIC port: offloads, DMA into an rx pool, fabric attachment."""

    def __init__(self, host, ip, rx_pool, features=None,
                 tx_latency_ns=300.0, rx_latency_ns=300.0, mss=1460):
        self.host = host
        self.ip = ip
        self.rx_pool = rx_pool
        self.features = features or NicFeatures()
        self.tx_latency_ns = tx_latency_ns
        self.rx_latency_ns = rx_latency_ns
        self.mss = mss
        self.fabric = None
        self.stats = {
            "tx_frames": 0, "rx_frames": 0, "rx_dropped_nobuf": 0,
            "rx_bad_csum": 0, "tso_splits": 0,
        }

    def attach(self, fabric):
        self.fabric = fabric
        fabric.register(self)
        return self

    # -- transmit ---------------------------------------------------------------

    def transmit(self, pkt, dst_ip):
        """Serialise a packet onto the fabric (runs at core-completion time).

        Consumes the caller's metadata reference.
        """
        frames = self._frames_for(pkt)
        sim = self.host.sim
        for frame in frames:
            self.stats["tx_frames"] += 1
            sim.schedule(self.tx_latency_ns, self.fabric.transmit, self, dst_ip, frame)
        pkt.release()

    def _frames_for(self, pkt):
        wire = bytearray(pkt.to_wire())
        payload_len = len(wire) - HEADERS_LEN
        if payload_len > self.mss:
            if not self.features.tso:
                raise ValueError(
                    f"oversized segment ({payload_len}B payload) without TSO"
                )
            return self._tso_split(wire)
        if self.features.tx_csum_offload:
            info = _l4_csum_info(wire)
            if info is not None:
                struct.pack_into("!H", wire, info[0], info[2])
        return [bytes(wire)]

    def _tso_split(self, wire):
        """Hardware segmentation: one jumbo segment -> MSS-sized frames."""
        eth = bytes(wire[:ETH_HEADER_LEN])
        ip = IPv4Header.unpack(wire[ETH_HEADER_LEN:])
        tcp_raw = bytes(wire[ETH_HEADER_LEN + IPV4_HEADER_LEN:HEADERS_LEN])
        payload = bytes(wire[HEADERS_LEN:])
        (base_seq,) = struct.unpack_from("!I", tcp_raw, 4)
        frames = []
        offset = 0
        while offset < len(payload):
            chunk = payload[offset:offset + self.mss]
            tcp = bytearray(tcp_raw)
            struct.pack_into("!I", tcp, 4, (base_seq + offset) & 0xFFFFFFFF)
            last = offset + len(chunk) >= len(payload)
            if not last:
                tcp[13] &= ~0x01  # FIN only on the final frame
            ip_hdr = IPv4Header(
                ip.src, ip.dst, ip.proto,
                total_len=IPV4_HEADER_LEN + TCP_HEADER_LEN + len(chunk),
                ttl=ip.ttl, ident=ip.ident,
            )
            frame = bytearray(eth + ip_hdr.pack() + bytes(tcp) + chunk)
            csum = _tcp_checksum_of_frame(bytes(frame))
            struct.pack_into("!H", frame, ETH_HEADER_LEN + IPV4_HEADER_LEN + 16, csum)
            frames.append(bytes(frame))
            offset += len(chunk)
            self.stats["tso_splits"] += 1
        return frames

    # -- receive ----------------------------------------------------------------

    def on_wire(self, frame):
        """A frame arrived from the fabric: DMA it into an rx buffer."""
        self.stats["rx_frames"] += 1
        try:
            buf = self.rx_pool.alloc()
        except Exception:
            self.stats["rx_dropped_nobuf"] += 1
            return
        buf.write(0, frame)
        pkt = PktBuf(buf, data_off=0)
        pkt.data_len = len(frame)
        if self.features.hw_timestamps:
            pkt.hw_tstamp = self.host.sim.now
        if self.features.rx_csum_offload and len(frame) >= HEADERS_LEN:
            try:
                info = _l4_csum_info(frame)
            except ValueError:
                info = None  # malformed headers: the stack drops the frame
            if info is not None:
                pkt.wire_csum = info[1]
                pkt.csum_verified = info[2] == info[1]
                if not pkt.csum_verified:
                    self.stats["rx_bad_csum"] += 1
        # Hand to the host after the NIC's fixed rx latency.
        self.host.sim.schedule(self.rx_latency_ns, self.host.on_nic_rx, self, pkt)

    def __repr__(self):
        return f"<Nic {self.ip} {self.features!r}>"
