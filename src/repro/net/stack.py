"""Host network stack: sockets, demux, run-to-completion processing.

:class:`Host` ties a CPU set, a NIC and a :class:`NetworkStack`
together and implements the execution discipline that produces the
paper's Figure 2: every packet (or timer) is processed run-to-
completion on one core, the core serialises work, and packets produced
during a processing slice leave the host when the slice *completes* on
that core — so a slow storage stack delays every queued request behind
it.

PASTE mode (the paper's server configuration) is a host whose NIC rx
pool lives in a **persistent-memory region**: payload is DMA'd straight
into PM, and the application can take ownership of packet buffers
(:meth:`~repro.net.tcp.RxSegment.retain` + ``steal_buffer``) and persist
them with a flush — no copy.  A DRAM rx pool gives the classic stack.
"""

from repro.net.headers import (
    ACK,
    ETH_HEADER_LEN,
    ETHERTYPE_IPV4,
    IPV4_HEADER_LEN,
    IPPROTO_TCP,
    RST,
    SYN,
    TCP_HEADER_LEN,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    ip_to_int,
)
from repro.net.tcp import TcpConnection, TcpState
from repro.pm.device import DRAMDevice
from repro.net.pool import BufferPool
from repro.sim import ExecutionContext
from repro.sim.cpu import CpuSet


def _mac_for_ip(ip_int):
    """Deterministic pseudo-MAC so Ethernet headers are well-formed."""
    return bytes([0x02, 0x00]) + ip_int.to_bytes(4, "big")


#: Wire bytes of the IPv4 ethertype, for the rx fast-path peek.
_ETHERTYPE_IPV4_BYTES = ETHERTYPE_IPV4.to_bytes(2, "big")

#: (local_ip, remote_ip) -> packed Ethernet header bytes.  The MAC
#: derivation is a pure function of the IPs, so tx frames reuse one
#: immutable 14-byte header per peer pair instead of rebuilding it.
_ETH_FRAME_CACHE = {}
_ETH_FRAME_CACHE_MAX = 4096


def _eth_header_bytes(local_ip, remote_ip):
    key = (local_ip, remote_ip)
    cached = _ETH_FRAME_CACHE.get(key)
    if cached is None:
        if len(_ETH_FRAME_CACHE) >= _ETH_FRAME_CACHE_MAX:
            _ETH_FRAME_CACHE.clear()
        cached = EthernetHeader(
            dst=_mac_for_ip(remote_ip), src=_mac_for_ip(local_ip),
            ethertype=ETHERTYPE_IPV4,
        ).pack()
        _ETH_FRAME_CACHE[key] = cached
    return cached


class Socket:
    """Application handle for one TCP connection."""

    def __init__(self, stack, conn):
        self._stack = stack
        self.conn = conn
        #: app callbacks: on_data(sock, RxSegment, ctx), on_established(sock, ctx),
        #: on_close(sock), on_reset(sock)
        self.on_data = None
        self.on_established = None
        self.on_close = None
        self.on_reset = None
        conn.on_data = self._deliver
        conn.on_established = self._established
        conn.on_close = self._closed
        conn.on_reset = self._reset

    # -- plumbing from the TCP layer -------------------------------------------

    def _deliver(self, conn, segment, ctx):
        if self.on_data is not None:
            self.on_data(self, segment, ctx)

    def _established(self, conn, ctx):
        if self.on_established is not None:
            self.on_established(self, ctx)

    def _closed(self, conn):
        if self.on_close is not None:
            self.on_close(self)

    def _reset(self, conn):
        if self.on_reset is not None:
            self.on_reset(self)

    # -- app API -----------------------------------------------------------------

    @property
    def state(self):
        return self.conn.state

    @property
    def core(self):
        return self.conn.core

    #: Fraction of the socket-send cost a corked (MSG_MORE) append pays:
    #: it queues an iovec without running the transmit machinery.
    CORKED_SEND_FRACTION = 0.3

    def _charge_send(self, ctx, more):
        if more:
            ctx.charge(
                self._stack.costs.sock_send * self.CORKED_SEND_FRACTION, "net.sock"
            )
        else:
            self._stack.costs.charge_sock_send(ctx)

    def send(self, data, ctx, more=False):
        """Write bytes to the stream (copied into packet buffers).

        ``more=True`` (MSG_MORE) enqueues without transmitting so
        consecutive writes coalesce into full segments.
        """
        self._charge_send(ctx, more)
        self.conn.send(data, ctx, more=more)

    def send_buffer(self, buf, offset, length, ctx, more=False):
        """Write a buffer slice zero-copy (psend-style, §5.1)."""
        self._charge_send(ctx, more)
        self.conn.send_buffer(buf, offset, length, ctx, more=more)

    def close(self, ctx):
        self.conn.close(ctx)

    def abort(self, ctx):
        self.conn.abort(ctx)

    def __repr__(self):
        return f"<Socket {self.conn!r}>"


class NetworkStack:
    """Protocol processing and connection demux for one host."""

    def __init__(self, host, costs, tx_pool):
        self.host = host
        self.sim = host.sim
        self.costs = costs
        self.tx_pool = tx_pool
        self.tx_headroom = ETH_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN + 10
        self._connections = {}
        self._listeners = {}
        self._pending_tx = []
        self._taps = []
        #: When set (and the NIC has TSO), new connections emit jumbo
        #: segments of this size and the NIC splits them on the wire.
        self.gso_size = None
        #: Advertised-window ceiling for new connections (16-bit max).
        self.default_rcv_wnd = 65535
        #: Delayed-ACK interval for new connections; None = quickack.
        self.delack_ns = None
        self._iss = 10_000
        self._ephemeral = 40_000
        # Idle-connection reaper (opt-in, see enable_idle_reaper).
        self.reaper_idle_ns = None
        self.reaper_scan_ns = None
        self._reaper_timer = None
        self.stats = {
            "rx_packets": 0, "rx_bad_csum": 0, "rx_no_socket": 0,
            "rx_malformed": 0,
            "tx_packets": 0, "rst_sent": 0, "rst_dropped_nobuf": 0,
            "conns_reaped": 0, "tapped": 0,
        }

    # -- packet taps -----------------------------------------------------------

    def add_tap(self, callback):
        """Register a packet-capture consumer (Figure 3's second reader).

        ``callback(pkt, ctx)`` runs for every received frame after
        protocol parsing, holding its *own* metadata reference — the
        clone/refcount machinery lets the capture path and the socket
        path share payload without copies.  The tap must ``release()``
        the packet when done (immediately after the callback returns is
        fine; retaining longer is the point of refcounts).
        """
        self._taps.append(callback)
        return callback

    def remove_tap(self, callback):
        self._taps.remove(callback)

    def _run_taps(self, pkt, ctx):
        for tap in self._taps:
            self.stats["tapped"] += 1
            tap(pkt.retain(), ctx)

    # -- application surface -------------------------------------------------

    def listen(self, port, on_accept):
        """Accept connections on ``port``; ``on_accept(socket, ctx)`` fires
        when each handshake completes."""
        if port in self._listeners:
            raise ValueError(f"port {port} already listening")
        self._listeners[port] = on_accept

    def connect(self, remote_ip, remote_port, ctx, core=None, local_port=None):
        """Active open; returns the socket immediately (SYN in flight)."""
        remote_ip = ip_to_int(remote_ip)
        if local_port is None:
            local_port = self._ephemeral
            self._ephemeral += 1
        core = core or self.host.cpus.assign()
        conn = TcpConnection(
            self, self.host.ip, local_port, remote_ip, remote_port,
            core, self._next_iss(),
        )
        self._apply_gso(conn)
        self._connections[conn.tuple4] = conn
        self._arm_reaper()
        sock = Socket(self, conn)
        conn.open_active(ctx)
        return sock

    def _apply_gso(self, conn):
        """Jumbo software segments when the NIC can split them (TSO)."""
        if self.gso_size and self.host.nic.features.tso:
            conn.mss = self.gso_size

    def _next_iss(self):
        self._iss += 100_000
        return self._iss

    def forget_connection(self, conn):
        self._connections.pop(conn.tuple4, None)

    def connection_count(self):
        return len(self._connections)

    # -- idle-connection reaper -------------------------------------------------

    def enable_idle_reaper(self, idle_ns, scan_ns=None):
        """Reap connections with no rx activity for ``idle_ns``.

        TCP never retransmits an RST, so one lost on the wire leaves
        the server side half-open forever: ESTABLISHED, no timers
        armed, the partial request's buffers pinned.  The reaper is
        the kernel's keepalive/idle-timeout analog — a periodic scan
        that silently tears down (no RST; the peer is gone) any
        connection idle past the threshold, firing its reset callback
        so the application drops per-connection state.

        Opt-in because reaping is a policy decision: a workload with
        legitimate think-time gaps longer than ``idle_ns`` would lose
        healthy connections.  ``scan_ns`` defaults to a quarter of the
        idle threshold.  The scan timer only stays armed while
        connections exist, so an idle simulation still drains.
        """
        if idle_ns <= 0:
            raise ValueError("idle_ns must be positive")
        self.reaper_idle_ns = idle_ns
        self.reaper_scan_ns = scan_ns or max(idle_ns // 4, 1)
        self._arm_reaper()

    def disable_idle_reaper(self):
        self.reaper_idle_ns = None
        self.reaper_scan_ns = None
        if self._reaper_timer is not None:
            self._reaper_timer.cancel()
            self._reaper_timer = None

    def _arm_reaper(self):
        if (self.reaper_idle_ns is None or self._reaper_timer is not None
                or not self._connections):
            return
        self._reaper_timer = self.sim.schedule(self.reaper_scan_ns, self._reap_scan)

    def _reap_scan(self):
        self._reaper_timer = None
        if self.reaper_idle_ns is None:
            return
        now = self.sim.now
        for conn in list(self._connections.values()):
            if conn.state in (TcpState.CLOSED, TcpState.LISTEN,
                              TcpState.TIME_WAIT):
                continue  # TIME_WAIT already has its own expiry timer
            if now - conn.last_activity >= self.reaper_idle_ns:
                self.stats["conns_reaped"] += 1
                conn.reap()
        self._arm_reaper()

    # -- transmit path ---------------------------------------------------------

    def ip_output(self, conn, pkt, tcp_header, payload_len, ctx):
        """Add TCP/IP/Ethernet headers and queue the packet for the NIC."""
        self.costs.charge_tcp_tx(ctx)
        nic = self.host.nic
        ip_header = IPv4Header(
            conn.local_ip, conn.remote_ip, IPPROTO_TCP,
            total_len=IPV4_HEADER_LEN + TCP_HEADER_LEN + payload_len,
        )
        if nic.features.tx_csum_offload:
            tcp_header.checksum = 0  # NIC fills it in on the wire
        else:
            payload = pkt.to_wire()
            tcp_header.compute_checksum(ip_header, payload)
            self.costs.charge_sw_checksum(ctx, TCP_HEADER_LEN + len(payload))
        pkt.push(tcp_header.pack())
        pkt.push(ip_header.pack())
        self.costs.charge_ip_tx(ctx)
        pkt.push(_eth_header_bytes(conn.local_ip, conn.remote_ip))
        self.costs.charge_driver_tx(ctx)
        pkt.tstamp = self.sim.now
        pkt.tcp = tcp_header
        pkt.ip = ip_header
        self.stats["tx_packets"] += 1
        self._pending_tx.append((pkt, conn.remote_ip))

    def drain_tx(self):
        """Take the packets produced during the current processing slice."""
        out = self._pending_tx
        self._pending_tx = []
        return out

    # -- receive path -----------------------------------------------------------

    def rx(self, pkt, ctx):
        """Full receive processing of one frame (run-to-completion)."""
        self.stats["rx_packets"] += 1
        self.costs.charge_driver_rx(ctx)
        if pkt.data_len < ETH_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN:
            pkt.release()
            return
        # Peek just the 2-byte ethertype instead of materialising the
        # whole frame (linear_bytes reads every payload byte off the
        # device) to unpack a header whose only consulted field is this.
        if pkt.payload_slice(ETH_HEADER_LEN - 2, 2) != _ETHERTYPE_IPV4_BYTES:
            pkt.release()
            return
        pkt.l2_off = pkt.data_off
        pkt.pull(ETH_HEADER_LEN)
        self.costs.charge_ip_rx(ctx)
        raw_ip = pkt.payload_slice(0, IPV4_HEADER_LEN)
        try:
            ip_header = IPv4Header.unpack(raw_ip)
        except ValueError:
            # Corrupted version/IHL nibble: a real stack drops the frame
            # before it ever reaches checksum verification.
            self.stats["rx_malformed"] += 1
            pkt.release()
            return
        if not ip_header.verify_checksum(raw_ip) or ip_header.proto != IPPROTO_TCP:
            pkt.release()
            return
        # Trim Ethernet padding before checksum/payload accounting.
        if pkt.data_len > ip_header.total_len:
            pkt.trim(ip_header.total_len)
        pkt.l3_off = pkt.data_off
        pkt.pull(IPV4_HEADER_LEN)
        try:
            tcp_header = TCPHeader.unpack(pkt.payload_slice(0, TCP_HEADER_LEN))
        except ValueError:
            # Corrupted data-offset nibble: drop, like a real stack.
            self.stats["rx_malformed"] += 1
            pkt.release()
            return
        # Integrity: hardware-verified if the NIC offload did it, software
        # otherwise.  Bad checksums are dropped here, exactly like a real
        # stack, and show up as retransmissions.
        if pkt.csum_verified:
            csum_ok = True
        elif pkt.wire_csum is not None and not pkt.csum_verified and \
                self.host.nic.features.rx_csum_offload:
            csum_ok = False
        else:
            payload_all = pkt.linear_bytes()
            csum_ok = tcp_header.verify_checksum(ip_header, payload_all[TCP_HEADER_LEN:])
            self.costs.charge_sw_checksum(ctx, len(payload_all))
        if not csum_ok:
            self.stats["rx_bad_csum"] += 1
            pkt.release()
            return
        pkt.l4_off = pkt.data_off
        pkt.pull(TCP_HEADER_LEN)
        pkt.ip = ip_header
        pkt.tcp = tcp_header
        payload_len = ip_header.total_len - IPV4_HEADER_LEN - TCP_HEADER_LEN
        self.costs.charge_tcp_rx(ctx)
        if self._taps:
            self._run_taps(pkt, ctx)
        self._demux(pkt, ip_header, tcp_header, payload_len, ctx)

    def _demux(self, pkt, ip_header, tcp_header, payload_len, ctx):
        key = (ip_header.dst, tcp_header.dst_port, ip_header.src, tcp_header.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.input(pkt, tcp_header, 0, payload_len, ctx)
            pkt.release()
            return
        if tcp_header.flags & SYN and not (tcp_header.flags & ACK):
            on_accept = self._listeners.get(tcp_header.dst_port)
            if on_accept is not None:
                self._accept(pkt, ip_header, tcp_header, on_accept, ctx)
                pkt.release()
                return
        self.stats["rx_no_socket"] += 1
        if not tcp_header.flags & RST:
            self._send_rst(ip_header, tcp_header, payload_len, ctx)
        pkt.release()

    def _accept(self, pkt, ip_header, tcp_header, on_accept, ctx):
        core = self.host.cpus.assign()
        conn = TcpConnection(
            self, ip_header.dst, tcp_header.dst_port,
            ip_header.src, tcp_header.src_port, core, self._next_iss(),
        )
        self._apply_gso(conn)
        self._connections[conn.tuple4] = conn
        self._arm_reaper()
        sock = Socket(self, conn)
        sock.on_established = lambda s, c: on_accept(s, c)
        conn.accept_syn(tcp_header, ctx)

    def _send_rst(self, ip_header, tcp_header, payload_len, ctx):
        """Refuse a segment aimed at nothing (stateless RST)."""
        from repro.net.pktbuf import PktBuf
        from repro.net.pool import PoolExhausted

        try:
            pkt = PktBuf.alloc(self.tx_pool, headroom=self.tx_headroom)
        except PoolExhausted:
            # An RST is best-effort (never retransmitted); under pool
            # pressure it drops like any other lost segment rather than
            # unwinding the receive path that still holds the rx packet.
            self.stats["rst_dropped_nobuf"] += 1
            return
        self.stats["rst_sent"] += 1
        rst = TCPHeader(
            tcp_header.dst_port, tcp_header.src_port,
            seq=tcp_header.ack, ack=tcp_header.seq + payload_len + 1,
            flags=RST | ACK, window=0,
        )
        reply_ip = IPv4Header(
            ip_header.dst, ip_header.src, IPPROTO_TCP,
            total_len=IPV4_HEADER_LEN + TCP_HEADER_LEN,
        )
        if not self.host.nic.features.tx_csum_offload:
            rst.compute_checksum(reply_ip, b"")
        pkt.push(rst.pack())
        pkt.push(reply_ip.pack())
        eth = EthernetHeader(
            dst=_mac_for_ip(ip_header.src), src=_mac_for_ip(ip_header.dst),
        )
        pkt.push(eth.pack())
        self._pending_tx.append((pkt, ip_header.src))

    def core_for_packet(self, pkt):
        """RSS: an existing connection's packets go to its core."""
        if pkt.data_len < ETH_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN:
            return self.host.cpus[0]
        raw = pkt.linear_bytes()
        try:
            ip_header = IPv4Header.unpack(raw[ETH_HEADER_LEN:])
            tcp_header = TCPHeader.unpack(raw[ETH_HEADER_LEN + IPV4_HEADER_LEN:])
        except ValueError:
            # Malformed headers can't be steered; rx() will drop them.
            return self.host.cpus[0]
        key = (ip_header.dst, tcp_header.dst_port, ip_header.src, tcp_header.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            return conn.core
        return self.host.cpus[0]


class Host:
    """A machine: cores + NIC + stack + memory, on the simulated fabric."""

    def __init__(self, sim, name, ip, fabric, costs, cores=1,
                 rx_pool_region=None, pool_slots=8192, slot_size=2048,
                 busy_poll=True, irq_latency_ns=2000.0, nic_features=None):
        self.sim = sim
        self.name = name
        self.ip = ip_to_int(ip)
        self.costs = costs
        self.cpus = CpuSet(cores)
        #: False after :meth:`kill`: the host drops rx frames and runs
        #: no further processing slices (whole-host failure injection).
        self.alive = True
        self.busy_poll = busy_poll
        self.irq_latency_ns = irq_latency_ns
        self._completion_hooks = []
        #: Aggregate of every processing slice's charges (the Table 1
        #: harness divides this by the request count for per-request rows).
        self.accounting = ExecutionContext()
        #: Optional live-observability hook (repro.obs.Recorder); None
        #: keeps the hot path allocation- and branch-cheap.
        self.recorder = None

        # Packet memory: tx always DRAM; rx DRAM unless a PM region is
        # supplied (PASTE mode).
        pool_bytes = pool_slots * slot_size
        self.pool_dram = DRAMDevice(2 * pool_bytes, name=f"{name}.pktmem")
        self.tx_pool = BufferPool(
            self.pool_dram.region(0, pool_bytes, f"{name}.txpool"),
            slot_size, name=f"{name}.txpool",
        )
        if rx_pool_region is not None:
            self.rx_pool = BufferPool(rx_pool_region, slot_size, name=f"{name}.rxpool(pm)")
        else:
            self.rx_pool = BufferPool(
                self.pool_dram.region(pool_bytes, pool_bytes, f"{name}.rxpool"),
                slot_size, name=f"{name}.rxpool",
            )

        from repro.net.nic import Nic

        self.nic = Nic(self, self.ip, self.rx_pool, features=nic_features)
        self.nic.attach(fabric)
        self.stack = NetworkStack(self, costs, self.tx_pool)
        #: Optional Homa-like message transport (created by enable_homa).
        self.homa = None

    @property
    def paste_mode(self):
        """True when rx packet buffers live in persistent memory."""
        return self.rx_pool.persistent

    def enable_homa(self):
        """Attach the Homa-like transport alongside TCP (§5.2)."""
        if self.homa is None:
            from repro.net.homa import HomaTransport

            self.homa = HomaTransport(self, self.costs, self.tx_pool)
            if self.recorder is not None:
                # The observability layer was attached before the
                # transport existed; give it the send/retransmit hooks.
                self.recorder.attach_transport(self.homa)
        return self.homa

    # -- execution discipline ------------------------------------------------

    def _transport_for(self, pkt):
        """Demux by IP protocol: Homa packets bypass the TCP stack."""
        if self.homa is not None and pkt.data_len > ETH_HEADER_LEN + 9:
            proto = pkt.payload_slice(ETH_HEADER_LEN + 9, 1)[0]
            if proto == 0xFD:
                return self.homa
        return self.stack

    def kill(self):
        """Whole-host failure: stop receiving and processing, forever.

        Models pulling the power cord on everything *except* the
        persistent memory: DRAM state (sockets, reassembly buffers,
        timers) is unrecoverable, frames addressed here fall on the
        floor, and any timer that fires later finds ``alive`` False and
        does nothing.  PM namespaces survive and can be recovered by a
        replacement host — the paper's §4 durability story."""
        self.alive = False

    def on_nic_rx(self, nic, pkt):
        """NIC handed us a packet (fires at arrival + NIC latency)."""
        if not self.alive:
            # A dead host's frames vanish; release the rx buffer the
            # NIC already allocated so the pool itself stays coherent.
            pkt.release()
            return
        transport = self._transport_for(pkt)
        core = transport.core_for_packet(pkt)
        start = self.sim.now if self.busy_poll else self.sim.now + self.irq_latency_ns
        self.process_on_core(core, lambda ctx: transport.rx(pkt, ctx), start=start)

    def process_on_core(self, core, fn, start=None):
        """Run ``fn(ctx)`` run-to-completion on ``core``.

        The function's charged cost occupies the core; packets it queued
        and completion hooks it registered take effect when the core
        finishes the slice.  Returns the completion time.
        """
        if not self.alive:
            # Timers scheduled before the kill may still fire; a dead
            # host executes nothing.
            return self.sim.now
        ctx = ExecutionContext()
        hooks_before = len(self._completion_hooks)
        fn(ctx)
        self.accounting.merge(ctx)
        out_packets = self.stack.drain_tx()
        if self.homa is not None:
            out_packets.extend(self.homa.drain_tx())
        hooks = self._completion_hooks[hooks_before:]
        del self._completion_hooks[hooks_before:]
        t_end = core.execute(start if start is not None else self.sim.now, ctx.elapsed)
        if self.recorder is not None:
            self.recorder.record_slice(self, core, ctx, t_end)
        for pkt, dst_ip in out_packets:
            self.sim.at(t_end, self.nic.transmit, pkt, dst_ip)
        for hook in hooks:
            self.sim.at(t_end, hook, t_end, ctx)
        return t_end

    def call_at_completion(self, hook):
        """Register ``hook(t_end, ctx)`` to fire when this slice completes.

        Only valid while inside :meth:`process_on_core` (e.g. from an
        application callback): this is how a closed-loop client knows
        the true end-to-end completion time of a response.
        """
        self._completion_hooks.append(hook)

    def __repr__(self):
        mode = "PASTE" if self.paste_mode else "kernel"
        return f"<Host {self.name} {mode} cores={len(self.cpus)}>"
