"""Packet-buffer pools.

A :class:`BufferPool` slices a memory :class:`~repro.pm.device.Region`
into fixed-size slots and hands out refcounted :class:`PacketBuffer`
handles.  The pool's region decides the semantics:

- DRAM region → a normal kernel packet-buffer pool (skb data pages).
- PM region → PASTE's persistent packet buffers: payload DMA'd into a
  slot is *already in persistent memory*, so an application that takes
  ownership of the buffer can persist it with a flush and no copy.

Reference counting mirrors the paper's Figure 3: the *data* refcount
lives here (``PacketBuffer.refcount``); packet-metadata refcounts live
on :class:`~repro.net.pktbuf.PktBuf`.
"""

from repro.sim.context import NULL_CONTEXT


class PoolExhausted(MemoryError):
    """No free slots left in a buffer pool."""


class PacketBuffer:
    """A refcounted fixed-size slot of a pool's region."""

    __slots__ = ("pool", "slot", "base", "size", "refcount", "_dev", "_abs")

    def __init__(self, pool, slot, base, size):
        self.pool = pool
        self.slot = slot
        self.base = base  # region-local offset of this slot
        self.size = size
        self.refcount = 1
        # Precomputed device + absolute offset: every DMA'd frame and
        # every payload read funnels through this handle, so the
        # region indirection is hoisted out of the per-access path.
        # Slot bounds are checked here; device bounds hold because the
        # slot lies inside the pool's region by construction.
        region = pool.region
        self._dev = region.device
        self._abs = region.base + base

    def get(self):
        """Take an additional data reference."""
        if self.refcount <= 0:
            raise RuntimeError("use-after-free of packet buffer")
        self.refcount += 1
        return self

    def put(self):
        """Drop a data reference; the slot returns to the pool at zero."""
        if self.refcount <= 0:
            raise RuntimeError("double free of packet buffer")
        self.refcount -= 1
        if self.refcount == 0:
            self.pool._release(self.slot)
        return self.refcount

    def _check(self, offset, length):
        if offset < 0 or length < 0 or offset + length > self.size:
            raise IndexError(
                f"buffer slot {self.slot}: access [{offset}, {offset + length}) "
                f"outside {self.size} bytes"
            )

    def write(self, offset, data):
        length = len(data)
        if offset < 0 or offset + length > self.size:
            self._check(offset, length)
        return self._dev.write(self._abs + offset, data)

    def read(self, offset, length):
        if offset < 0 or length < 0 or offset + length > self.size:
            self._check(offset, length)
        # Device bounds hold by construction (slot ⊂ region ⊂ device)
        # and reads have no tracker/observer hooks, so read the backing
        # store directly.
        start = self._abs + offset
        return bytes(self._dev.data[start:start + length])

    def persist(self, offset, length, ctx=NULL_CONTEXT, category="pm.flush"):
        """Flush+fence this range (meaningful only on a PM-backed pool)."""
        self._check(offset, length)
        return self.pool.region.persist(self.base + offset, length, ctx, category)

    def flush(self, offset, length, ctx=NULL_CONTEXT, category="pm.flush"):
        self._check(offset, length)
        return self.pool.region.flush(self.base + offset, length, ctx, category)

    @property
    def persistent(self):
        return self.pool.persistent

    def region_offset(self, offset=0):
        """Region-local address of a byte in this slot (for persistence records)."""
        self._check(offset, 0)
        return self.base + offset

    def __repr__(self):
        return f"<PacketBuffer slot={self.slot} size={self.size} ref={self.refcount}>"


class BufferPool:
    """Fixed-slot allocator over a region; LIFO free list for cache warmth.

    Occupancy watermarks make the pool a *pressure signal* for the
    serving layer (``repro.core.overload``): crossing ``high_watermark``
    (fraction of slots in use) raises :attr:`under_pressure`, dropping
    back below ``low_watermark`` clears it, and registered listeners
    fire on each transition.  Storage that adopts packet buffers turns
    pool exhaustion into a storage outage — the watermarks exist so the
    server can shed or reclaim *before* the NIC starts dropping frames.
    """

    def __init__(self, region, slot_size=2048, name=None,
                 high_watermark=0.9, low_watermark=0.7):
        if slot_size <= 0:
            raise ValueError("slot size must be positive")
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError("need 0 < low_watermark <= high_watermark <= 1")
        self.region = region
        self.slot_size = slot_size
        self.name = name or f"pool:{region.name}"
        self.nslots = region.size // slot_size
        if self.nslots == 0:
            raise ValueError(
                f"region {region.name} ({region.size}B) smaller than one slot"
            )
        self._free = list(range(self.nslots - 1, -1, -1))
        self._in_use = set()
        self.allocs = 0
        self.frees = 0
        self.high_water = 0
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.under_pressure = False
        self.pressure_events = 0
        self.exhaustions = 0
        self._pressure_listeners = []

    @property
    def persistent(self):
        return self.region.persistent

    @property
    def in_use(self):
        return len(self._in_use)

    @property
    def available(self):
        return len(self._free)

    @property
    def occupancy(self):
        """Fraction of slots currently in use (0.0 — 1.0)."""
        return len(self._in_use) / self.nslots

    def add_pressure_listener(self, callback):
        """``callback(pool, under_pressure)`` fires on watermark crossings."""
        self._pressure_listeners.append(callback)
        return callback

    def remove_pressure_listener(self, callback):
        self._pressure_listeners.remove(callback)

    def _update_pressure(self):
        occ = self.occupancy
        if not self.under_pressure and occ >= self.high_watermark:
            self.under_pressure = True
            self.pressure_events += 1
            for listener in self._pressure_listeners:
                listener(self, True)
        elif self.under_pressure and occ < self.low_watermark:
            self.under_pressure = False
            for listener in self._pressure_listeners:
                listener(self, False)

    def alloc(self):
        """Take a slot; returns a fresh :class:`PacketBuffer` with refcount 1."""
        if not self._free:
            self.exhaustions += 1
            raise PoolExhausted(f"{self.name}: all {self.nslots} slots in use")
        slot = self._free.pop()
        self._in_use.add(slot)
        self.allocs += 1
        if len(self._in_use) > self.high_water:
            self.high_water = len(self._in_use)
        self._update_pressure()
        return PacketBuffer(self, slot, slot * self.slot_size, self.slot_size)

    def _release(self, slot):
        if slot not in self._in_use:
            raise RuntimeError(f"{self.name}: releasing slot {slot} not in use")
        self._in_use.remove(slot)
        self._free.append(slot)
        self.frees += 1
        self._update_pressure()

    def slot_region_base(self, slot):
        """Region-local base offset of a slot (used by recovery scans)."""
        if not 0 <= slot < self.nslots:
            raise IndexError(f"slot {slot} out of range")
        return slot * self.slot_size

    def buffer_at_slot(self, slot):
        """Re-materialise a buffer handle for ``slot`` (recovery path).

        The slot is marked in-use; the returned handle owns it.
        """
        if slot in self._in_use:
            raise RuntimeError(f"slot {slot} already materialised")
        self._free.remove(slot)
        self._in_use.add(slot)
        self._update_pressure()
        return PacketBuffer(self, slot, slot * self.slot_size, self.slot_size)

    def __repr__(self):
        kind = "PM" if self.persistent else "DRAM"
        return f"<BufferPool {self.name} {kind} {self.in_use}/{self.nslots} in use>"
