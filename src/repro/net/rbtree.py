"""Red-black tree.

TCP receivers keep out-of-order segments in a red-black tree so that an
arriving in-order segment can quickly find and splice its successors —
the paper (§4.2) points at this structure as evidence that packet
metadata builds efficient in-memory indexes.  We use it for exactly
that (the TCP OOO queue) and again as an alternative store index in the
ablation benchmarks.

Standard CLRS implementation with a shared NIL sentinel.  Keys are
ints (or anything totally ordered); values are arbitrary.  Duplicate
keys are rejected — callers that can see duplicates (TCP overlapping
segments) resolve them before insertion.
"""

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "left", "right", "parent", "color")

    def __init__(self, key, value, color, nil):
        self.key = key
        self.value = value
        self.left = nil
        self.right = nil
        self.parent = nil
        self.color = color


class RBTree:
    """Sorted map: insert, delete, exact/floor/ceiling search, in-order walk."""

    def __init__(self):
        self._nil = _Node(None, None, BLACK, None)
        self._nil.left = self._nil.right = self._nil.parent = self._nil
        self._root = self._nil
        self._count = 0

    def __len__(self):
        return self._count

    def __bool__(self):
        return self._count > 0

    def __contains__(self, key):
        return self._find(key) is not self._nil

    # -- search ---------------------------------------------------------------

    def _find(self, key):
        node = self._root
        while node is not self._nil:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return self._nil

    def get(self, key, default=None):
        node = self._find(key)
        return default if node is self._nil else node.value

    def min(self):
        """(key, value) of the smallest key; None if empty."""
        if self._root is self._nil:
            return None
        node = self._min_node(self._root)
        return node.key, node.value

    def max(self):
        if self._root is self._nil:
            return None
        node = self._root
        while node.right is not self._nil:
            node = node.right
        return node.key, node.value

    def floor(self, key):
        """Largest (k, v) with k <= key; None if none."""
        node, best = self._root, None
        while node is not self._nil:
            if node.key == key:
                return node.key, node.value
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return None if best is None else (best.key, best.value)

    def ceiling(self, key):
        """Smallest (k, v) with k >= key; None if none."""
        node, best = self._root, None
        while node is not self._nil:
            if node.key == key:
                return node.key, node.value
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        return None if best is None else (best.key, best.value)

    def items(self):
        """In-order (key, value) pairs."""
        stack, node = [], self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self):
        for key, _ in self.items():
            yield key

    # -- insert ---------------------------------------------------------------

    def insert(self, key, value):
        """Insert a new key.  Raises KeyError on duplicates."""
        parent, node = self._nil, self._root
        while node is not self._nil:
            parent = node
            if key == node.key:
                raise KeyError(f"duplicate key {key!r}")
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, RED, self._nil)
        fresh.parent = parent
        if parent is self._nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._count += 1
        self._insert_fixup(fresh)
        return fresh

    def replace(self, key, value):
        """Insert, or overwrite the value if the key exists."""
        node = self._find(key)
        if node is self._nil:
            self.insert(key, value)
        else:
            node.value = value

    def _rotate_left(self, x):
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x):
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z):
        while z.parent.color is RED:
            if z.parent is z.parent.parent.left:
                uncle = z.parent.parent.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = z.parent.parent.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self._root.color = BLACK

    # -- delete ---------------------------------------------------------------

    def delete(self, key):
        """Remove a key; returns its value.  Raises KeyError if missing."""
        node = self._find(key)
        if node is self._nil:
            raise KeyError(key)
        value = node.value
        self._delete_node(node)
        self._count -= 1
        return value

    def pop_min(self):
        """Remove and return the smallest (key, value); None if empty."""
        if self._root is self._nil:
            return None
        node = self._min_node(self._root)
        pair = (node.key, node.value)
        self._delete_node(node)
        self._count -= 1
        return pair

    def _min_node(self, node):
        while node.left is not self._nil:
            node = node.left
        return node

    def _transplant(self, u, v):
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete_node(self, z):
        y = z
        y_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._min_node(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color is BLACK:
            self._delete_fixup(x)

    def _delete_fixup(self, x):
        while x is not self._root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = BLACK

    # -- verification (used by property tests) ---------------------------------

    def check_invariants(self):
        """Assert BST + red-black invariants; returns the black height."""
        assert self._root.color is BLACK, "root must be black"

        def walk(node, lo, hi):
            if node is self._nil:
                return 1
            assert (lo is None or node.key > lo) and (hi is None or node.key < hi), (
                "BST order violated"
            )
            if node.color is RED:
                assert node.left.color is BLACK and node.right.color is BLACK, (
                    "red node with red child"
                )
            left_bh = walk(node.left, lo, node.key)
            right_bh = walk(node.right, node.key, hi)
            assert left_bh == right_bh, "black-height mismatch"
            return left_bh + (1 if node.color is BLACK else 0)

        return walk(self._root, None, None)
