"""Server-side storage engines: the systems the paper compares.

Every engine speaks the same interface — ``put(key, message, ctx)`` /
``get(key, ctx)`` — and differs in which Table 1 overheads it incurs:

=================  ==========================================================
engine             overheads
=================  ==========================================================
NullEngine         none — the "networking-only" server of §3 that discards
                   the request and answers as if it were stored
RawPMEngine        copy + flush: the "net.+persist." series of Figure 2
                   (a simple app that copies and persists into PM, no
                   data management)
NoveLSMEngine      the full stack: request preparation, CRC32C checksum,
                   copy into a PM buffer, allocation + persistent skip
                   list insertion, cache flushes (Table 1's 6.39 µs of
                   data management + 1.94 µs of persistence)
=================  ==========================================================

The packet-native engine the paper *proposes* lives in
:mod:`repro.core.pktstore`, beside the rest of the proposal.
"""

import struct

from repro.net.checksum import crc32c
from repro.sim.context import FilterContext, NULL_CONTEXT


class _MemtablePressure:
    """Pressure adapter for an LSM store's *current* memtable arena.

    The memtable (and thus its PM allocator) is replaced on every
    rotation, so a listener pinned to one allocator would go stale;
    this adapter re-resolves the live allocator on each ``update()``
    poll (the overload controller polls before every admission
    decision) and applies the usual watermark hysteresis.
    """

    def __init__(self, store, high_watermark=0.9, low_watermark=0.7):
        self.store = store
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.under_pressure = False
        self.pressure_events = 0
        self._pressure_listeners = []

    @property
    def occupancy(self):
        memtable = self.store.memtable
        if memtable is None:
            return 0.0
        return memtable.allocator.occupancy()

    def add_pressure_listener(self, callback):
        self._pressure_listeners.append(callback)
        return callback

    def remove_pressure_listener(self, callback):
        self._pressure_listeners.remove(callback)

    def update(self):
        occ = self.occupancy
        if not self.under_pressure and occ >= self.high_watermark:
            self.under_pressure = True
            self.pressure_events += 1
            for listener in self._pressure_listeners:
                listener(self, True)
        elif self.under_pressure and occ < self.low_watermark:
            self.under_pressure = False
            for listener in self._pressure_listeners:
                listener(self, False)


class NullEngine:
    """Discard writes, never find reads: measures pure networking."""

    name = "null"

    def __init__(self):
        self.puts = 0
        self.gets = 0

    def put(self, key, message, ctx):
        self.puts += 1

    def get(self, key, ctx):
        self.gets += 1
        return None


class RawPMEngine:
    """Copy + persist into a PM ring: persistence without data management.

    This is the paper's Figure 2 baseline ("a simple application that
    copies and persists data in the PM region without NoveLSM").  It
    keeps no index — values land in a ring buffer with a tiny length
    header — so it is *not* a usable store; it exists to isolate the
    persistence overhead.
    """

    name = "rawpm"
    _HEADER = struct.Struct("<I")

    def __init__(self, region, costs):
        self.region = region
        self.costs = costs
        self.cursor = 0
        self.puts = 0
        self.wrapped = 0

    def put(self, key, message, ctx):
        value = message.body
        need = self._HEADER.size + len(value)
        if self.cursor + need > self.region.size - 64:
            self.cursor = 0
            self.wrapped += 1
        # Data copy out of the socket buffer into the PM region
        # (Table 1 prices this at ~1.1 ns/B), then flush to persist.
        self.costs.charge_store_copy(ctx, len(value))
        self.region.write(self.cursor, self._HEADER.pack(len(value)) + value)
        self.region.persist(self.cursor, need, ctx, "persist")
        self.cursor += need
        # The ring's durable cursor (at the region tail) is what a
        # restart would resume from — persisted with its own fence,
        # like any PM ring buffer.
        self.region.write(self.region.size - 8, struct.pack("<Q", self.cursor))
        self.region.persist(self.region.size - 8, 8, ctx, "persist")
        self.puts += 1

    def get(self, key, ctx):
        return None  # no index: the baseline cannot serve reads


class LevelDBEngine:
    """Disk-era LevelDB: DRAM memtable + WAL on a block device (§2.1).

    The design PM displaces: every put is durable only after its
    write-ahead-log record syncs to the SSD, so device latency sits on
    the critical path of every request — the *persistence* overhead PM
    shrinks by two orders of magnitude.  Data management (prep, CRC,
    copy, DRAM memtable insert) is otherwise the same work NoveLSM does.
    """

    name = "leveldb-ssd"

    def __init__(self, store, costs, charge_checksum=True):
        self.store = store
        self.costs = costs
        self.charge_checksum = charge_checksum
        self.puts = 0
        self.gets = 0

    def put(self, key, message, ctx=NULL_CONTEXT):
        self.costs.charge_request_prep(ctx)
        value = message.body
        if self.charge_checksum:
            self.costs.charge_crc(ctx, len(value))
        self.costs.charge_store_copy(ctx, len(value))
        # store.put appends + syncs the WAL (blockdev latencies) and
        # inserts into the DRAM memtable.
        self.store.put(bytes(key), value, ctx)
        self.puts += 1

    def get(self, key, ctx=NULL_CONTEXT):
        self.gets += 1
        return self.store.get(bytes(key), ctx)

    def delete(self, key, ctx=NULL_CONTEXT):
        self.costs.charge_request_prep(ctx)
        self.store.delete(bytes(key), ctx)

    def scan(self, start=None, end=None, ctx=NULL_CONTEXT):
        return self.store.scan(start, end, ctx)

    @property
    def pressure_sources(self):
        if not hasattr(self, "_memtable_pressure"):
            self._memtable_pressure = _MemtablePressure(self.store)
        return (self._memtable_pressure,)

    def reclaim(self, ctx=NULL_CONTEXT):
        """Emergency flush: seal the memtable to a level-0 table."""
        if self.store.blockdev is None or self.store.memtable is None \
                or self.store.memtable.data_bytes == 0:
            return 0
        self.store.rotate(ctx)
        return 1


class NoveLSMEngine:
    """NoveLSM with the measurement hooks of the paper's §3.

    ``charge_checksum`` mirrors the paper ("we implement checksum
    calculation in NoveLSM ... it is enabled in LevelDB"); setting
    ``persistence=False`` reproduces the modified build used to isolate
    persistence overheads (flushes still happen, but cost nothing).
    """

    name = "novelsm"

    def __init__(self, store, costs, charge_checksum=True, persistence=True,
                 verify_on_read=False):
        self.store = store
        self.costs = costs
        self.charge_checksum = charge_checksum
        self.persistence = persistence
        self.verify_on_read = verify_on_read
        self.puts = 0
        self.gets = 0
        #: key -> crc of latest value (what LevelDB keeps beside data).
        self._crcs = {}

    def _effective_ctx(self, ctx):
        if self.persistence:
            return ctx
        return FilterContext(ctx, drop={"persist"})

    def put(self, key, message, ctx=NULL_CONTEXT):
        ctx = self._effective_ctx(ctx)
        # 1. Build the store's internal request structure (Table 1: 0.70 µs).
        self.costs.charge_request_prep(ctx)
        value = message.body
        # 2. Integrity checksum over the value (Table 1: 1.77 µs).
        if self.charge_checksum:
            self.costs.charge_crc(ctx, len(value))
            self._crcs[bytes(key)] = crc32c(value)
        # 3. Copy into the store's PM buffer (Table 1: 1.14 µs).
        self.costs.charge_store_copy(ctx, len(value))
        # 4. Allocation + skip-list insertion (Table 1: 2.78 µs) and
        # 5. flushes (Table 1: 1.94 µs) are charged inside the store.
        self.store.put(bytes(key), value, ctx)
        self.puts += 1

    def get(self, key, ctx=NULL_CONTEXT):
        ctx = self._effective_ctx(ctx)
        self.gets += 1
        value = self.store.get(bytes(key), ctx)
        if value is not None and self.verify_on_read and self.charge_checksum:
            self.costs.charge_crc(ctx, len(value))
            expected = self._crcs.get(bytes(key))
            if expected is not None and crc32c(value) != expected:
                raise IOError(f"stored value for {key!r} failed its checksum")
        return value

    def delete(self, key, ctx=NULL_CONTEXT):
        ctx = self._effective_ctx(ctx)
        self.costs.charge_request_prep(ctx)
        self._crcs.pop(bytes(key), None)
        self.store.delete(bytes(key), ctx)

    def scan(self, start=None, end=None, ctx=NULL_CONTEXT):
        return self.store.scan(start, end, self._effective_ctx(ctx))

    @property
    def pressure_sources(self):
        if not hasattr(self, "_memtable_pressure"):
            self._memtable_pressure = _MemtablePressure(self.store)
        return (self._memtable_pressure,)

    def reclaim(self, ctx=NULL_CONTEXT):
        """Emergency flush — only possible with a block device to flush
        to; the NoveLSM-as-measured configuration (PM memtables, no
        SSD) has nowhere to move data and reports 507 honestly."""
        if self.store.blockdev is None or self.store.memtable is None \
                or self.store.memtable.data_bytes == 0:
            return 0
        self.store.rotate(self._effective_ctx(ctx))
        return 1


class _DirectMessage:
    """Message shim for direct (non-network) engine inserts."""

    __slots__ = ("_value",)

    body_slices = ()
    hw_tstamp = None
    wire_csum = None

    def __init__(self, value):
        self._value = value

    @property
    def body(self):
        return self._value

    @property
    def content_length(self):
        return len(self._value)

    def release(self):
        pass


def direct_put(engine, key, value, ctx=NULL_CONTEXT):
    """Insert raw bytes straight into an engine, bypassing the network.

    Copy-based engines read ``message.body``, so a bodiless shim
    suffices.  Packet-native engines store *references into the packet
    pool* — a shim with no body slices would adopt zero fragments and
    record an empty value — so for those the bytes are written into
    freshly allocated pool slots (a synthetic packet carrying exactly
    the payload) and adopted by the store, same as the rx path.
    """
    key = bytes(key)
    value = bytes(value)
    store = getattr(engine, "store", None)
    pool = getattr(store, "pool", None)
    if pool is not None and hasattr(pool, "alloc") \
            and hasattr(pool, "slot_size"):
        frag_refs = []
        try:
            for off in range(0, len(value), pool.slot_size):
                chunk = value[off:off + pool.slot_size]
                buf = pool.alloc()
                buf.write(0, chunk)
                frag_refs.append((buf, 0, len(chunk)))
        except Exception:
            for buf, _offset, _length in frag_refs:
                buf.put()
            raise
        store.put(key, frag_refs, len(value), None, None, ctx)
        if hasattr(engine, "puts"):
            engine.puts += 1
        return
    engine.put(key, _DirectMessage(value), ctx)
