"""Block device model (the disks of §2.1).

LevelDB was designed for spinning and solid-state disks: its WAL and
SSTables live on a block device and reach durability through ``*sync``
calls.  This model captures what matters for the comparison with PM:

- block-granular access with per-op latency charged to the caller,
- a volatile write cache: writes are not durable until :meth:`sync`,
- crash drops every unsynced write.

Defaults approximate a datacenter NVMe SSD.
"""

from repro.sim.context import NULL_CONTEXT

BLOCK_SIZE = 4096


class BlockDevice:
    """A byte array addressed in blocks, with a volatile write cache."""

    def __init__(self, size, read_ns=70_000.0, write_ns=15_000.0,
                 sync_ns=25_000.0, block_size=BLOCK_SIZE, name="ssd"):
        if size <= 0 or size % block_size:
            raise ValueError("device size must be a positive multiple of the block size")
        self.size = size
        self.block_size = block_size
        self.read_ns = read_ns
        self.write_ns = write_ns
        self.sync_ns = sync_ns
        self.name = name
        self.data = bytearray(size)
        self.durable = bytearray(size)
        #: Block indices written since the last sync.
        self._unsynced = set()
        self.reads = 0
        self.writes = 0
        self.syncs = 0

    def _check(self, offset, length):
        if offset < 0 or length < 0 or offset + length > self.size:
            raise IndexError(
                f"{self.name}: access [{offset}, {offset + length}) outside {self.size}B"
            )

    def _blocks(self, offset, length):
        if length == 0:
            return range(0)
        return range(offset // self.block_size, (offset + length - 1) // self.block_size + 1)

    def nblocks(self, offset, length):
        return len(self._blocks(offset, length))

    def read(self, offset, length, ctx=NULL_CONTEXT, category="blockdev.read"):
        """Read bytes; charges one device read per covered block."""
        self._check(offset, length)
        self.reads += 1
        ctx.charge(self.nblocks(offset, length) * self.read_ns, category)
        return bytes(self.data[offset:offset + length])

    def write(self, offset, payload, ctx=NULL_CONTEXT, category="blockdev.write"):
        """Write bytes into the device cache; durable only after sync."""
        length = len(payload)
        self._check(offset, length)
        self.writes += 1
        self.data[offset:offset + length] = payload
        self._unsynced.update(self._blocks(offset, length))
        ctx.charge(self.nblocks(offset, length) * self.write_ns, category)
        return length

    def sync(self, ctx=NULL_CONTEXT, category="blockdev.sync"):
        """Flush the write cache (fsync/fdatasync equivalent)."""
        self.syncs += 1
        for block in self._unsynced:
            start = block * self.block_size
            self.durable[start:start + self.block_size] = self.data[start:start + self.block_size]
        drained = len(self._unsynced)
        self._unsynced.clear()
        ctx.charge(self.sync_ns, category)
        return drained

    def crash(self):
        """Power loss: unsynced writes vanish."""
        self.data = bytearray(self.durable)
        self._unsynced.clear()

    def durable_view(self, offset, length):
        self._check(offset, length)
        return bytes(self.durable[offset:offset + length])

    def __repr__(self):
        return f"<BlockDevice {self.name} {self.size}B unsynced={len(self._unsynced)}>"
