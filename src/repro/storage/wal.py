"""Write-ahead log over a block device.

LevelDB persists every put to a sequential log before acknowledging,
so a crash replays the log into a fresh memtable (§2.1's
"appending writes to a sequential journal").  NoveLSM's PM memtable
drops this log entirely — one of the costs the paper's measurements
implicitly include in the disk-era baseline.

Record format::

    [u32 payload_len][u32 crc32c(payload)][payload]

Replay stops at the first record whose length or CRC is invalid —
exactly how a torn tail write is discarded.
"""

import struct

from repro.net.checksum import crc32c
from repro.sim.context import NULL_CONTEXT

RECORD_HEADER = struct.Struct("<II")


class WriteAheadLog:
    """Append-only checksummed log on a block-device extent."""

    def __init__(self, device, base, size, name="wal"):
        if base % device.block_size:
            raise ValueError("WAL extent must be block-aligned")
        self.device = device
        self.base = base
        self.size = size
        self.name = name
        self.tail = 0
        self.records = 0

    def append(self, payload, ctx=NULL_CONTEXT, sync=True):
        """Append one record; by default syncs (commit point)."""
        need = RECORD_HEADER.size + len(payload)
        if self.tail + need > self.size:
            raise IOError(f"{self.name}: log full")
        blob = RECORD_HEADER.pack(len(payload), crc32c(payload)) + payload
        self.device.write(self.base + self.tail, blob, ctx, "wal.write")
        self.tail += need
        self.records += 1
        if sync:
            self.device.sync(ctx, "wal.sync")
        return self.tail

    def replay(self, ctx=NULL_CONTEXT, durable_only=True):
        """Yield every intact record payload, in append order.

        ``durable_only`` reads the post-crash (synced) image, which is
        what recovery actually sees.
        """
        cursor = 0
        read = self.device.durable_view if durable_only else (
            lambda off, length: self.device.read(off, length, ctx, "wal.read")
        )
        while cursor + RECORD_HEADER.size <= self.size:
            header = read(self.base + cursor, RECORD_HEADER.size)
            length, stored_crc = RECORD_HEADER.unpack(header)
            if length == 0 or cursor + RECORD_HEADER.size + length > self.size:
                break
            payload = read(self.base + cursor + RECORD_HEADER.size, length)
            if crc32c(payload) != stored_crc:
                break  # torn tail: discard from here on
            yield payload
            cursor += RECORD_HEADER.size + length
        self.tail = max(self.tail, cursor)

    def reset(self, ctx=NULL_CONTEXT):
        """Truncate the log (after a memtable flush makes it redundant)."""
        self.device.write(self.base, bytes(RECORD_HEADER.size), ctx, "wal.write")
        self.device.sync(ctx, "wal.sync")
        self.tail = 0
        self.records = 0

    def __repr__(self):
        return f"<WriteAheadLog {self.name} {self.records} records, tail={self.tail}>"
