"""The networked key-value server of the paper's §3.

Listens for HTTP over the simulated TCP stack, dispatches PUT/GET/
DELETE to a pluggable storage engine, and answers — all within the
run-to-completion processing slice of the receiving core, which is
what makes storage-stack cost visible as end-to-end latency and
queueing (Figure 2).

Protocol (what ``wrk`` drives):

- ``PUT /<key>`` with the value as the body → ``200 OK``
- ``GET /<key>`` → ``200`` with the value, or ``404``
- ``DELETE /<key>`` → ``200``
- ``GET /__scan__?start=<k>&end=<k>`` → range query (the "efficient
  range query support" the paper lists among NoveLSM's storage
  properties); the body is a length-prefixed binary pair stream,
  decodable with :func:`decode_scan_body`.
"""

import struct

from repro.net.http import HttpParser, build_response


def encode_scan_body(pairs):
    """Serialise (key, value) pairs: [u16 klen][u32 vlen][key][value]..."""
    parts = []
    for key, value in pairs:
        parts.append(struct.pack("<HI", len(key), len(value)))
        parts.append(key)
        parts.append(value)
    return b"".join(parts)


def decode_scan_body(body):
    """Inverse of :func:`encode_scan_body`."""
    pairs = []
    cursor = 0
    while cursor < len(body):
        key_len, value_len = struct.unpack_from("<HI", body, cursor)
        cursor += 6
        key = body[cursor:cursor + key_len]
        cursor += key_len
        value = body[cursor:cursor + value_len]
        cursor += value_len
        pairs.append((key, value))
    return pairs


def _parse_scan_query(path):
    """start/end bounds out of ``/__scan__?start=a&end=b`` (both optional)."""
    query = path.split("?", 1)[1] if "?" in path else ""
    bounds = {"start": None, "end": None}
    for part in query.split("&"):
        if "=" in part:
            name, value = part.split("=", 1)
            if name in bounds and value:
                bounds[name] = value.encode("utf-8")
    return bounds["start"], bounds["end"]


class KVServer:
    """HTTP front-end binding a storage engine to a host's stack.

    With ``zero_copy_get=True`` (and an engine exposing ``get_refs``,
    i.e. the packet store), GET responses transmit the stored value
    straight out of persistent memory as TCP frag pages — §4.2's send
    path: "it can avoid memory deallocation in its own allocator and
    memory allocation inside the network stack".
    """

    def __init__(self, host, engine, port=80, zero_copy_get=False):
        self.host = host
        self.engine = engine
        self.port = port
        self.costs = host.costs
        self.zero_copy_get = zero_copy_get and hasattr(engine, "store")
        self.stats = {"puts": 0, "gets": 0, "deletes": 0, "hits": 0,
                      "misses": 0, "bad_requests": 0, "connections": 0,
                      "zero_copy_gets": 0}
        host.stack.listen(port, self._on_accept)

    def _on_accept(self, sock, ctx):
        self.stats["connections"] += 1
        parser = HttpParser(is_response=False)
        sock.on_data = lambda s, segment, c: self._on_data(s, parser, segment, c)

    def _on_data(self, sock, parser, segment, ctx):
        for message in parser.feed(segment, ctx, self.costs):
            self._handle(sock, message, ctx)

    def _key_of(self, message):
        path = message.path or "/"
        return path.lstrip("/").encode("utf-8")

    def _handle(self, sock, message, ctx):
        self.costs.charge_app(ctx)
        key = self._key_of(message)
        try:
            if message.method == "GET" and key.startswith(b"__scan__") and \
                    hasattr(self.engine, "scan"):
                start, end = _parse_scan_query(message.path)
                pairs = list(self.engine.scan(start, end, ctx))
                response = build_response(200, encode_scan_body(pairs))
            elif message.method == "PUT" and key:
                self.engine.put(key, message, ctx)
                self.stats["puts"] += 1
                response = build_response(200)
            elif message.method == "GET" and key:
                self.stats["gets"] += 1
                if self.zero_copy_get:
                    self._zero_copy_get(sock, key, ctx)
                    return  # response already sent from PM extents
                    # (the finally clause releases the message)
                value = self.engine.get(key, ctx)
                if value is None:
                    self.stats["misses"] += 1
                    response = build_response(404)
                else:
                    self.stats["hits"] += 1
                    response = build_response(200, value)
            elif message.method == "DELETE" and key and hasattr(self.engine, "delete"):
                self.engine.delete(key, ctx)
                self.stats["deletes"] += 1
                response = build_response(200)
            else:
                self.stats["bad_requests"] += 1
                response = build_response(404)
        finally:
            message.release()
        self.costs.charge_http_build(ctx)
        sock.send(response, ctx)

    def _zero_copy_get(self, sock, key, ctx):
        """Serve a GET without copying the value: headers go out as
        bytes, the value as frag references into the PM packet pool."""
        store = self.engine.store
        record, frags = store.get_refs(bytes(key), ctx)
        self.costs.charge_http_build(ctx)
        if record is None or record.tombstone:
            self.stats["misses"] += 1
            sock.send(build_response(404), ctx)
            return
        self.stats["hits"] += 1
        self.stats["zero_copy_gets"] += 1
        head = (
            f"HTTP/1.1 200 OK\r\nContent-Length: {record.value_len}\r\n\r\n"
        ).encode("ascii")
        # MSG_MORE coalesces head + value refs into full segments.
        sock.send(head, ctx, more=True)
        for index, (buf_slot, offset, length) in enumerate(frags):
            last = index == len(frags) - 1
            sock.send_buffer(store.buffer_handle(buf_slot), offset, length,
                             ctx, more=not last)

    def __repr__(self):
        return f"<KVServer :{self.port} engine={self.engine.name}>"


class HomaKVServer:
    """The same KV service over the Homa-like transport (§5.2).

    Requests and responses are self-contained messages carrying the
    same HTTP-style encoding, so the storage engines — including the
    packet-native one, whose zero-copy adoption works on any segment's
    packet metadata — run unchanged.
    """

    def __init__(self, host, engine, port=80):
        self.host = host
        self.engine = engine
        self.port = port
        self.costs = host.costs
        self.stats = {"puts": 0, "gets": 0, "deletes": 0, "hits": 0,
                      "misses": 0, "bad_requests": 0}
        self.transport = host.enable_homa()
        self.transport.listen(port, self._on_request)

    def _on_request(self, rpc, segments, ctx):
        parser = HttpParser(is_response=False)
        messages = []
        for segment in segments:
            messages.extend(parser.feed(segment, ctx, self.costs))
        for message in messages:
            response = self._dispatch(message, ctx)
            self.costs.charge_http_build(ctx)
            rpc.reply(response, ctx)

    def _dispatch(self, message, ctx):
        self.costs.charge_app(ctx)
        key = (message.path or "/").lstrip("/").encode("utf-8")
        try:
            if message.method == "PUT" and key:
                self.engine.put(key, message, ctx)
                self.stats["puts"] += 1
                return build_response(200)
            if message.method == "GET" and key:
                value = self.engine.get(key, ctx)
                self.stats["gets"] += 1
                if value is None:
                    self.stats["misses"] += 1
                    return build_response(404)
                self.stats["hits"] += 1
                return build_response(200, value)
            if message.method == "DELETE" and key and hasattr(self.engine, "delete"):
                self.engine.delete(key, ctx)
                self.stats["deletes"] += 1
                return build_response(200)
            self.stats["bad_requests"] += 1
            return build_response(404)
        finally:
            message.release()

    def __repr__(self):
        return f"<HomaKVServer :{self.port} engine={self.engine.name}>"
