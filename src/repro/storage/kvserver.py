"""The networked key-value server of the paper's §3.

Listens for HTTP over the simulated TCP stack, dispatches PUT/GET/
DELETE to a pluggable storage engine, and answers — all within the
run-to-completion processing slice of the receiving core, which is
what makes storage-stack cost visible as end-to-end latency and
queueing (Figure 2).

Protocol (what ``wrk`` drives):

- ``PUT /<key>`` with the value as the body → ``200 OK``
- ``GET /<key>`` → ``200`` with the value, or ``404``
- ``DELETE /<key>`` → ``200``
- ``GET /__scan__?start=<k>&end=<k>`` → range query (the "efficient
  range query support" the paper lists among NoveLSM's storage
  properties); the body is a length-prefixed binary pair stream,
  decodable with :func:`decode_scan_body`.

Resource exhaustion is *contained* per request (docs/RESILIENCE.md):
a full packet pool or PM arena answers 503/507 with every packet
reference released, instead of unwinding into TCP receive processing
and crashing the server.  Handing the server an
:class:`~repro.core.overload.OverloadController` additionally enables
watermark-driven admission control, emergency reclamation, and
zero-copy→copy GET degradation.
"""

import struct

from repro.core.overload import (
    CONTAINABLE,
    OverloadController,
    status_for_failure,
)
from repro.net.http import HttpError, HttpParser, build_response
from repro.net.tcp import SendQueueFull, TcpState


def encode_scan_body(pairs):
    """Serialise (key, value) pairs: [u16 klen][u32 vlen][key][value]..."""
    parts = []
    for key, value in pairs:
        parts.append(struct.pack("<HI", len(key), len(value)))
        parts.append(key)
        parts.append(value)
    return b"".join(parts)


def decode_scan_body(body):
    """Inverse of :func:`encode_scan_body`.

    Raises :class:`ValueError` (with the failing offset) on truncated
    or garbage input instead of surfacing a bare ``struct.error``.
    """
    pairs = []
    cursor = 0
    while cursor < len(body):
        if cursor + 6 > len(body):
            raise ValueError(
                f"truncated scan body: {len(body) - cursor} trailing bytes "
                f"at offset {cursor} (need 6 for a pair header)"
            )
        key_len, value_len = struct.unpack_from("<HI", body, cursor)
        cursor += 6
        if cursor + key_len + value_len > len(body):
            raise ValueError(
                f"truncated scan body: pair at offset {cursor - 6} declares "
                f"{key_len}+{value_len} payload bytes but only "
                f"{len(body) - cursor} remain"
            )
        key = body[cursor:cursor + key_len]
        cursor += key_len
        value = body[cursor:cursor + value_len]
        cursor += value_len
        pairs.append((key, value))
    return pairs


def _parse_scan_query(path):
    """start/end bounds out of ``/__scan__?start=a&end=b`` (both optional)."""
    query = path.split("?", 1)[1] if "?" in path else ""
    bounds = {"start": None, "end": None}
    for part in query.split("&"):
        if "=" in part:
            name, value = part.split("=", 1)
            if name in bounds and value:
                bounds[name] = value.encode("utf-8")
    return bounds["start"], bounds["end"]


class _RequestShed(Exception):
    """Internal: admission control refused this request (answer 503)."""


def _status_of(response):
    """Status code out of serialised response bytes (``HTTP/1.1 NNN ...``)."""
    try:
        return int(response[9:12])
    except (ValueError, TypeError):
        return 0


class _KVDispatch:
    """Request dispatch + containment shared by the TCP and Homa servers.

    Subclasses provide the transport glue; this class owns the
    status-code contract:

    =====  ==================================================
    400    malformed HTTP (parser raised :class:`HttpError`)
    503    shed by admission control, or transient packet-
           memory exhaustion (``PoolExhausted``)
    507    persistent storage full (``SlabExhausted`` /
           ``AllocationError``) after emergency reclamation
    =====  ==================================================
    """

    def __init__(self, host, engine, port, overload=None, contain_errors=True):
        self.host = host
        self.engine = engine
        self.port = port
        self.costs = host.costs
        self.contain_errors = contain_errors
        self.overload = overload
        #: Optional live-observability hook (repro.obs.Recorder); when
        #: None the request path pays one attribute load per request.
        self.recorder = None
        self.stats = {"puts": 0, "gets": 0, "deletes": 0, "hits": 0,
                      "misses": 0, "bad_requests": 0, "connections": 0,
                      "zero_copy_gets": 0, "shed": 0, "contained_errors": 0,
                      "degraded_gets": 0, "dropped_responses": 0,
                      "parse_errors": 0}
        if overload is not None:
            self._wire_overload(overload)

    def _wire_overload(self, overload):
        """Default wiring: host pools + whatever the engine exposes."""
        overload.watch(self.host.rx_pool)
        overload.watch(self.host.tx_pool)
        for source in getattr(self.engine, "pressure_sources", ()):
            overload.watch(source)
        reclaim = getattr(self.engine, "reclaim", None)
        if reclaim is not None:
            overload.add_reclaimer(reclaim)

    # -- admission ------------------------------------------------------------

    def _admit(self, ctx):
        if self.overload is None:
            return True
        return self.overload.admit(ctx)

    def _should_degrade(self):
        if self.overload is not None and \
                self.overload.should_degrade_zero_copy():
            self.stats["degraded_gets"] += 1
            return True
        return False

    def _engine_put(self, key, message, ctx):
        """One put, with a single retry after emergency reclamation.

        The engine releases its own references on failure (the store's
        put is transactional), and ``message`` still holds the body
        slices, so a retry takes fresh references from intact state.
        """
        try:
            self.engine.put(key, message, ctx)
        except CONTAINABLE:
            if self.overload is None or not self.overload.relieve(ctx):
                raise
            self.engine.put(key, message, ctx)

    # -- dispatch -------------------------------------------------------------

    def _dispatch(self, message, ctx):
        """Run one request against the engine; returns response bytes.

        Containable failures (and admission sheds) become 503/507
        responses here; anything else propagates — and with
        ``contain_errors=False`` even the containable ones do, which is
        how the chaos harness proves the containment layer matters.
        """
        self.costs.charge_app(ctx)
        key = (message.path or "/").split("?", 1)[0].lstrip("/").encode("utf-8")
        try:
            return self._route(message, key, ctx)
        except _RequestShed:
            self.stats["shed"] += 1
            return build_response(503, b"overloaded: request shed",
                                  extra_headers={"Retry-After": "0"})
        except CONTAINABLE as exc:
            if not self.contain_errors:
                raise
            status = status_for_failure(exc) or 503
            self.stats["contained_errors"] += 1
            if status == 507 and self.overload is not None:
                # Best effort: reclaim now so the client's retry can land.
                self.overload.relieve(ctx)
            return build_response(status, str(exc).encode("utf-8", "replace"))

    def _route(self, message, key, ctx):
        if message.method == "GET" and key.startswith(b"__scan__") and \
                hasattr(self.engine, "scan"):
            start, end = _parse_scan_query(message.path)
            pairs = list(self.engine.scan(start, end, ctx))
            return build_response(200, encode_scan_body(pairs))
        if message.method == "PUT" and key:
            if not self._admit(ctx):
                raise _RequestShed
            self._engine_put(key, message, ctx)
            self.stats["puts"] += 1
            return build_response(200)
        if message.method == "GET" and key:
            self.stats["gets"] += 1
            value = self.engine.get(key, ctx)
            if value is None:
                self.stats["misses"] += 1
                return build_response(404)
            self.stats["hits"] += 1
            return build_response(200, value)
        if message.method == "DELETE" and key and hasattr(self.engine, "delete"):
            if not self._admit(ctx):
                raise _RequestShed
            self.engine.delete(key, ctx)
            self.stats["deletes"] += 1
            return build_response(200)
        self.stats["bad_requests"] += 1
        return build_response(404)


class KVServer(_KVDispatch):
    """HTTP front-end binding a storage engine to a host's stack.

    With ``zero_copy_get=True`` (and an engine exposing ``get_refs``,
    i.e. the packet store), GET responses transmit the stored value
    straight out of persistent memory as TCP frag pages — §4.2's send
    path: "it can avoid memory deallocation in its own allocator and
    memory allocation inside the network stack".  Under pool pressure
    the server degrades to the copy path (a zero-copy response pins
    its source buffers in the retransmission queue until ACKed).
    """

    def __init__(self, host, engine, port=80, zero_copy_get=False,
                 overload=None, contain_errors=True):
        super().__init__(host, engine, port, overload, contain_errors)
        self.zero_copy_get = zero_copy_get and hasattr(engine, "store")
        host.stack.listen(port, self._on_accept)

    def _on_accept(self, sock, ctx):
        self.stats["connections"] += 1
        parser = HttpParser(is_response=False)
        sock.on_data = lambda s, segment, c: self._on_data(s, parser, segment, c)
        # A connection that dies mid-request (RST, or FIN after half a
        # body) leaves retained body slices in the parser; drop them
        # with the connection or a stalled client leaks pool slots.
        sock.on_reset = lambda s: parser.reset()
        sock.on_close = lambda s: parser.reset()

    def _on_data(self, sock, parser, segment, ctx):
        try:
            messages = parser.feed(segment, ctx, self.costs)
        except HttpError as exc:
            if not self.contain_errors:
                raise
            # The stream position is unrecoverable after a parse error:
            # drop partial state (and its packet references), answer
            # 400, and close our side.
            parser.reset()
            self.stats["parse_errors"] += 1
            self.stats["bad_requests"] += 1
            self._send_response(
                sock, build_response(400, str(exc).encode("utf-8", "replace")),
                ctx,
            )
            if sock.state not in (TcpState.CLOSED, TcpState.TIME_WAIT):
                sock.close(ctx)
            return
        for message in messages:
            self._handle(sock, message, ctx)

    def _handle(self, sock, message, ctx):
        recorder = self.recorder
        if recorder is not None:
            recorder.request_begin(ctx)
        kind = message.method or "?"
        status = 0  # 0 = the handler raised (containment disabled)
        try:
            try:
                if message.method == "GET" and self.zero_copy_get and \
                        not message.path.lstrip("/").startswith("__scan__") and \
                        not self._should_degrade():
                    self.costs.charge_app(ctx)
                    key = (message.path or "/").lstrip("/").encode("utf-8")
                    if key:
                        status = self._zero_copy_get(sock, key, ctx)
                        return
                response = self._dispatch(message, ctx)
            finally:
                message.release()
            self.costs.charge_http_build(ctx)
            status = _status_of(response)
            self._send_response(sock, response, ctx)
        finally:
            if recorder is not None:
                recorder.request_end(kind, status, sock.core.index, ctx)

    def _send_response(self, sock, response, ctx):
        """Transmit, tolerating a connection the client already killed."""
        if sock.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            self.stats["dropped_responses"] += 1
            return
        try:
            sock.send(response, ctx)
        except SendQueueFull:
            if not self.contain_errors:
                raise
            # The client stopped draining and the bounded queue is
            # full; park nothing — reset so its buffers free now.
            self.stats["dropped_responses"] += 1
            sock.abort(ctx)
        if sock.state is TcpState.CLOSED:
            # The tx pool died mid-send and TCP reset the connection.
            self.stats["dropped_responses"] += 1

    def _zero_copy_get(self, sock, key, ctx):
        """Serve a GET without copying the value: headers go out as
        bytes, the value as frag references into the PM packet pool.
        Returns the response status for the request span."""
        store = self.engine.store
        self.stats["gets"] += 1
        record, frags = store.get_refs(bytes(key), ctx)
        self.costs.charge_http_build(ctx)
        if record is None or record.tombstone:
            self.stats["misses"] += 1
            self._send_response(sock, build_response(404), ctx)
            return 404
        self.stats["hits"] += 1
        self.stats["zero_copy_gets"] += 1
        head = (
            f"HTTP/1.1 200 OK\r\nContent-Length: {record.value_len}\r\n\r\n"
        ).encode("ascii")
        if sock.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            self.stats["dropped_responses"] += 1
            return 200
        try:
            # MSG_MORE coalesces head + value refs into full segments.
            sock.send(head, ctx, more=True)
            for index, (buf_slot, offset, length) in enumerate(frags):
                last = index == len(frags) - 1
                sock.send_buffer(store.buffer_handle(buf_slot), offset, length,
                                 ctx, more=not last)
        except SendQueueFull:
            if not self.contain_errors:
                raise
            # Part of the response may already be queued; the stream
            # cannot be repaired, so reset (teardown releases every
            # queued reference).
            self.stats["dropped_responses"] += 1
            sock.abort(ctx)
        return 200

    def __repr__(self):
        return f"<KVServer :{self.port} engine={self.engine.name}>"


class HomaKVServer(_KVDispatch):
    """The same KV service over the Homa-like transport (§5.2).

    Requests and responses are self-contained messages carrying the
    same HTTP-style encoding, so the storage engines — including the
    packet-native one, whose zero-copy adoption works on any segment's
    packet metadata — run unchanged.  Dispatch, admission control and
    error containment are literally the TCP server's (shared base
    class); only the transport glue differs.
    """

    def __init__(self, host, engine, port=80, overload=None,
                 contain_errors=True):
        super().__init__(host, engine, port, overload, contain_errors)
        self.transport = host.enable_homa()
        self.transport.listen(port, self._on_request)

    def _on_request(self, rpc, segments, ctx):
        self.stats["connections"] += 1
        parser = HttpParser(is_response=False)
        messages = []
        try:
            for segment in segments:
                messages.extend(parser.feed(segment, ctx, self.costs))
        except HttpError as exc:
            if not self.contain_errors:
                raise
            parser.reset()
            for message in messages:
                message.release()
            self.stats["parse_errors"] += 1
            self.stats["bad_requests"] += 1
            rpc.reply(build_response(400, str(exc).encode("utf-8", "replace")),
                      ctx)
            return
        recorder = self.recorder
        core = self.transport.core_for_rpc(rpc.rpc_id).index
        for message in messages:
            if recorder is not None:
                recorder.request_begin(ctx)
            kind = message.method or "?"
            status = 0
            try:
                try:
                    response = self._dispatch(message, ctx)
                finally:
                    message.release()
                self.costs.charge_http_build(ctx)
                status = _status_of(response)
                rpc.reply(response, ctx)
            finally:
                if recorder is not None:
                    recorder.request_end(kind, status, core, ctx,
                                         rpc_id=rpc.rpc_id)

    def __repr__(self):
        return f"<HomaKVServer :{self.port} engine={self.engine.name}>"
