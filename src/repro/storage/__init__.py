"""Storage substrate: the LSM key-value stores the paper measures.

From bottom to top:

- :mod:`repro.storage.blockdev` — a block device (SSD-like latency,
  volatile write cache, sync) for the disk-era pieces: WAL and SSTables.
- :mod:`repro.storage.bloom` — Bloom filters for SSTable lookups.
- :mod:`repro.storage.skiplist` — a byte-level skip list living inside
  a memory region.  Over DRAM it is LevelDB's memtable; over PM with
  crash-consistent linking it is NoveLSM's persistent memtable.
- :mod:`repro.storage.wal` — write-ahead log with per-record CRCs.
- :mod:`repro.storage.sstable` — sorted-string tables: data blocks,
  index, Bloom filter, checksummed footer.
- :mod:`repro.storage.lsm` — the LSM store (memtable rotation, level
  compaction, read path across levels) with LevelDB and NoveLSM
  configurations.
- :mod:`repro.storage.engines` — the server-side storage engines the
  benchmarks compare: null (networking-only), raw-PM copy+persist, and
  NoveLSM with the full Table 1 cost structure.
- :mod:`repro.storage.kvserver` — the networked HTTP KV server.
- :mod:`repro.storage.server` — :class:`ServerConfig` + :func:`serve`,
  the unified transport-agnostic entry point that builds engine,
  front-end, overload control and live metrics in one call.
"""

from repro.storage.blockdev import BlockDevice
from repro.storage.bloom import BloomFilter
from repro.storage.skiplist import RegionSkipList
from repro.storage.wal import WriteAheadLog
from repro.storage.sstable import SSTable, SSTableBuilder
from repro.storage.lsm import LSMStore, leveldb_store, novelsm_store
from repro.storage.engines import (
    NoveLSMEngine,
    NullEngine,
    RawPMEngine,
)
from repro.storage.kvserver import HomaKVServer, KVServer
from repro.storage.server import (
    ENGINES,
    Server,
    ServerConfig,
    TRANSPORTS,
    build_engine,
    serve,
)

__all__ = [
    "BlockDevice",
    "BloomFilter",
    "RegionSkipList",
    "WriteAheadLog",
    "SSTable",
    "SSTableBuilder",
    "LSMStore",
    "leveldb_store",
    "novelsm_store",
    "NullEngine",
    "RawPMEngine",
    "NoveLSMEngine",
    "KVServer",
    "HomaKVServer",
    "ENGINES",
    "TRANSPORTS",
    "ServerConfig",
    "Server",
    "build_engine",
    "serve",
]
