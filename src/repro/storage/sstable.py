"""Sorted-string tables.

The on-disk format LevelDB flushes memtables into: sorted entries
packed into ~4 KB data blocks, a block index (first key + extent of
each block), a Bloom filter, and a checksummed footer.  Lookups read
the index/bloom from memory (they are loaded at open) and at most one
data block from the device.

Serialized layout inside a device extent::

    [data block 0][data block 1]...[index][bloom][footer]
    entry  := [u16 key_len][u32 value_len][u8 flags][key][value]
    index  := [u32 nblocks] + nblocks * [u16 key_len][key][u32 off][u32 len][u32 crc]
    footer := [u32 index_off][u32 index_len][u32 bloom_off][u32 bloom_len]
              [u64 nentries][u32 footer_crc][u32 magic]
"""

import struct

from repro.net.checksum import crc32c
from repro.sim.context import NULL_CONTEXT
from repro.storage.bloom import BloomFilter

ENTRY_HEADER = struct.Struct("<HIB")
FOOTER = struct.Struct("<IIIIQII")
FOOTER_MAGIC = 0x55AB1E00
TOMBSTONE = 1

TARGET_BLOCK = 4096


class SSTableError(RuntimeError):
    """Corrupt or malformed table."""


class SSTableBuilder:
    """Accumulates sorted entries and serialises a table."""

    def __init__(self, target_block=TARGET_BLOCK, bits_per_key=10):
        self.target_block = target_block
        self.bits_per_key = bits_per_key
        self._entries = []
        self._last_key = None

    def add(self, key, value, tombstone=False):
        """Add the newest version of ``key``; keys must arrive sorted."""
        if self._last_key is not None and key <= self._last_key:
            raise SSTableError("keys must be added in strictly increasing order")
        self._last_key = key
        self._entries.append((key, value, tombstone))

    @property
    def nentries(self):
        return len(self._entries)

    def finish(self):
        """Serialise to bytes."""
        bloom = BloomFilter.for_entries(max(1, len(self._entries)), self.bits_per_key)
        blocks = []      # (first_key, serialized_block)
        current = []
        current_size = 0
        first_key = None
        for key, value, tombstone in self._entries:
            bloom.add(key)
            encoded = ENTRY_HEADER.pack(
                len(key), len(value), TOMBSTONE if tombstone else 0
            ) + key + value
            if first_key is None:
                first_key = key
            current.append(encoded)
            current_size += len(encoded)
            if current_size >= self.target_block:
                blocks.append((first_key, b"".join(current)))
                current, current_size, first_key = [], 0, None
        if current:
            blocks.append((first_key, b"".join(current)))

        body = bytearray()
        index_parts = [struct.pack("<I", len(blocks))]
        for first_key, block in blocks:
            offset = len(body)
            body.extend(block)
            index_parts.append(struct.pack("<H", len(first_key)) + first_key)
            index_parts.append(struct.pack("<III", offset, len(block), crc32c(block)))
        index_blob = b"".join(index_parts)
        bloom_blob = bloom.serialize()
        index_off = len(body)
        body.extend(index_blob)
        bloom_off = len(body)
        body.extend(bloom_blob)
        footer_head = struct.pack(
            "<IIIIQ", index_off, len(index_blob), bloom_off, len(bloom_blob),
            len(self._entries),
        )
        footer = footer_head + struct.pack("<II", crc32c(footer_head), FOOTER_MAGIC)
        body.extend(footer)
        return bytes(body)


class SSTable:
    """An immutable table resident in a block-device extent."""

    def __init__(self, device, base, length, name="sst"):
        self.device = device
        self.base = base
        self.length = length
        self.name = name
        self._index = []   # (first_key, offset, length, crc)
        self.nentries = 0
        self.bloom = None
        self._load_metadata()

    @classmethod
    def write(cls, device, base, builder_or_blob, ctx=NULL_CONTEXT, name="sst"):
        """Serialise a builder (or raw blob) into the device at ``base``."""
        blob = (
            builder_or_blob.finish()
            if isinstance(builder_or_blob, SSTableBuilder)
            else builder_or_blob
        )
        device.write(base, blob, ctx, "sstable.write")
        device.sync(ctx, "sstable.sync")
        return cls(device, base, len(blob), name=name)

    def _load_metadata(self):
        if self.length < FOOTER.size:
            raise SSTableError(f"{self.name}: too short for a footer")
        footer_raw = self.device.read(
            self.base + self.length - FOOTER.size, FOOTER.size
        )
        (index_off, index_len, bloom_off, bloom_len,
         nentries, footer_crc, magic) = FOOTER.unpack(footer_raw)
        if magic != FOOTER_MAGIC:
            raise SSTableError(f"{self.name}: bad magic")
        if crc32c(footer_raw[:24]) != footer_crc:
            raise SSTableError(f"{self.name}: footer CRC mismatch")
        self.nentries = nentries
        index_blob = self.device.read(self.base + index_off, index_len)
        (nblocks,) = struct.unpack_from("<I", index_blob, 0)
        cursor = 4
        for _ in range(nblocks):
            (key_len,) = struct.unpack_from("<H", index_blob, cursor)
            cursor += 2
            first_key = index_blob[cursor:cursor + key_len]
            cursor += key_len
            offset, length, crc = struct.unpack_from("<III", index_blob, cursor)
            cursor += 12
            self._index.append((first_key, offset, length, crc))
        bloom_blob = self.device.read(self.base + bloom_off, bloom_len)
        self.bloom = BloomFilter.deserialize(bloom_blob)

    # ---------------------------------------------------------------- lookups

    def _block_for(self, key):
        """Index of the data block that could hold ``key``; None if before all."""
        lo, hi, best = 0, len(self._index) - 1, None
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._index[mid][0] <= key:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def _iter_block(self, block_idx, ctx):
        first_key, offset, length, crc = self._index[block_idx]
        raw = self.device.read(self.base + offset, length, ctx, "sstable.read")
        if crc32c(raw) != crc:
            raise SSTableError(f"{self.name}: block {block_idx} CRC mismatch")
        cursor = 0
        while cursor < len(raw):
            key_len, value_len, flags = ENTRY_HEADER.unpack_from(raw, cursor)
            cursor += ENTRY_HEADER.size
            key = raw[cursor:cursor + key_len]
            cursor += key_len
            value = raw[cursor:cursor + value_len]
            cursor += value_len
            yield key, value, bool(flags & TOMBSTONE)

    def get(self, key, ctx=NULL_CONTEXT):
        """(found, value): tombstones return (True, None)."""
        if self.bloom is not None and not self.bloom.might_contain(key):
            return False, None
        block_idx = self._block_for(key)
        if block_idx is None:
            return False, None
        for entry_key, value, tombstone in self._iter_block(block_idx, ctx):
            if entry_key == key:
                return True, (None if tombstone else value)
            if entry_key > key:
                break
        return False, None

    def entries(self, ctx=NULL_CONTEXT):
        """All entries in key order (used by compaction and scans)."""
        for block_idx in range(len(self._index)):
            yield from self._iter_block(block_idx, ctx)

    def key_range(self, ctx=NULL_CONTEXT):
        """(smallest, largest) key, reading the first and last blocks."""
        if not self._index:
            return None, None
        first = next(iter(self._iter_block(0, ctx)))[0]
        last = None
        for entry in self._iter_block(len(self._index) - 1, ctx):
            last = entry[0]
        return first, last

    def __repr__(self):
        return f"<SSTable {self.name} {self.nentries} entries, {len(self._index)} blocks>"
