"""Bloom filter for SSTable lookups.

LevelDB attaches a Bloom filter to every table so that a ``get`` for an
absent key usually costs no block read.  Standard double-hashing
construction (Kirsch-Mitzenmacher) over two independent hashes of the
key; serialisable so it can live in the SSTable footer.
"""

import struct

from repro.net.checksum import crc32c

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a(data):
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


class BloomFilter:
    """Fixed-size bit array with k derived hash probes."""

    def __init__(self, nbits, nhashes):
        if nbits <= 0 or nhashes <= 0:
            raise ValueError("bloom filter needs positive bits and hashes")
        self.nbits = nbits
        self.nhashes = nhashes
        self._bits = bytearray((nbits + 7) // 8)
        self.added = 0

    @classmethod
    def for_entries(cls, nentries, bits_per_key=10):
        """Sized like LevelDB's default (10 bits/key, k≈7)."""
        nbits = max(64, nentries * bits_per_key)
        nhashes = max(1, min(30, int(round(bits_per_key * 0.69))))
        return cls(nbits, nhashes)

    def _probes(self, key):
        h1 = crc32c(key)
        h2 = _fnv1a(key) & 0xFFFFFFFF
        if h2 % self.nbits == 0:
            h2 += 1
        for i in range(self.nhashes):
            yield (h1 + i * h2) % self.nbits

    def add(self, key):
        for bit in self._probes(key):
            self._bits[bit >> 3] |= 1 << (bit & 7)
        self.added += 1

    def might_contain(self, key):
        """False means definitely absent; True means probably present."""
        for bit in self._probes(key):
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    def serialize(self):
        return struct.pack("<IIQ", self.nbits, self.nhashes, self.added) + bytes(self._bits)

    @classmethod
    def deserialize(cls, blob):
        if len(blob) < 16:
            raise ValueError("truncated bloom filter")
        nbits, nhashes, added = struct.unpack_from("<IIQ", blob, 0)
        bloom = cls(nbits, nhashes)
        body = blob[16:16 + len(bloom._bits)]
        if len(body) != len(bloom._bits):
            raise ValueError("truncated bloom filter")
        bloom._bits = bytearray(body)
        bloom.added = added
        return bloom

    def false_positive_rate_estimate(self):
        """Theoretical FP rate for the current fill."""
        if self.added == 0:
            return 0.0
        fill = 1.0 - (1.0 - 1.0 / self.nbits) ** (self.nhashes * self.added)
        return fill ** self.nhashes

    def __repr__(self):
        return f"<BloomFilter bits={self.nbits} k={self.nhashes} n={self.added}>"
