"""Unified server construction: one config, one entry point.

Before this module, standing up a server meant knowing which kwargs
each front-end took (``KVServer(zero_copy_get=...)`` vs
``HomaKVServer`` without it), building the engine through the bench
harness's private ``_make_engine``, wiring an
:class:`~repro.core.overload.OverloadController` by hand, remembering
``stack.enable_idle_reaper`` is TCP-only, and — new in this PR —
attaching a :class:`~repro.obs.trace.Recorder` to every piece.
:func:`serve` folds all of that behind a :class:`ServerConfig`::

    from repro.storage import ServerConfig, serve

    config = ServerConfig(transport="homa", engine="pktstore",
                          cores=4, overload=True, metrics=True)
    server = serve(host, config, pm_ns=pm_ns)
    server.kv        # the KVServer / HomaKVServer front-end
    server.metrics   # MetricsRegistry (None when metrics=False)

The old constructors remain as the implementation layer (and for
existing callers); new code, the testbed and the chaos harness go
through :func:`serve`.
"""

from dataclasses import dataclass, field, replace

from repro.core.overload import OverloadController
from repro.storage.engines import (
    LevelDBEngine,
    NoveLSMEngine,
    NullEngine,
    RawPMEngine,
)
from repro.storage.kvserver import HomaKVServer, KVServer
from repro.storage.lsm import leveldb_store, novelsm_store

#: Engine names build_engine understands (see bench/testbed.py's table).
ENGINES = ("null", "rawpm", "leveldb-ssd", "novelsm", "novelsm-nopersist",
           "pktstore")

TRANSPORTS = ("tcp", "homa")


@dataclass
class ServerConfig:
    """Everything that shapes one KV server, in one place.

    ==================  ======================================================
    field               meaning
    ==================  ======================================================
    transport           ``"tcp"`` (HTTP over the TCP stack) or ``"homa"``
                        (the §5.2 message transport)
    engine              storage engine name (:data:`ENGINES`)
    port                listening port
    cores               server cores; consumed by whoever builds the
                        :class:`~repro.net.stack.Host` (``make_testbed``),
                        validated by :func:`serve`
    zero_copy_get       serve GETs straight out of PM (TCP only; requires a
                        packet-native engine)
    contain_errors      per-request containment (docs/RESILIENCE.md)
    overload            ``True`` builds an :class:`OverloadController`,
                        an instance is used as-is, ``None`` disables
                        admission control
    reaper_idle_ns      enable the TCP idle-connection reaper at this
                        threshold (``None`` = off; ignored for homa, which
                        has no connections to reap)
    metrics             attach a :class:`~repro.obs.trace.Recorder` (live
                        Table-1 stage tracing + gauges)
    trace_capacity      request-span ring size when metrics are on
    memtable_arena      NoveLSM PM memtable arena bytes
    engine_kwargs       extra engine-constructor kwargs
    ack_policy          cluster mode (``serve(..., cluster=ctx)``):
                        ``"sync"`` defers the client ack until the
                        backup applied the forwarded put,
                        ``"primary-only"`` acks after the local apply;
                        ``None`` = standalone server
    ==================  ======================================================
    """

    transport: str = "tcp"
    engine: str = "novelsm"
    port: int = 80
    cores: int = 1
    zero_copy_get: bool = False
    contain_errors: bool = True
    overload: object = None
    reaper_idle_ns: float = None
    metrics: bool = False
    trace_capacity: int = 1024
    memtable_arena: int = 48 << 20
    engine_kwargs: dict = field(default_factory=dict)
    ack_policy: str = None
    #: Record this server's delivered frame stream (repro.capture): a
    #: ring-buffered tap on the fabric focused on the server's address.
    #: The resulting capture replays as a workload or rebuilds a
    #: standby (docs/CAPTURE.md).
    capture: bool = False
    #: Ring bounds when capture is on (None = unbounded).
    capture_max_frames: int = None
    capture_max_bytes: int = None

    def capture_meta(self):
        """The JSON-able provenance a capture needs to rebuild this
        server from the file alone (engine, transport, sizing)."""
        return {
            "server_config": {
                "transport": self.transport,
                "engine": self.engine,
                "port": self.port,
                "cores": self.cores,
                "zero_copy_get": self.zero_copy_get,
                "contain_errors": self.contain_errors,
                "overload": self.overload is not None,
                "reaper_idle_ns": self.reaper_idle_ns,
                "memtable_arena": self.memtable_arena,
                "engine_kwargs": dict(self.engine_kwargs),
                "ack_policy": self.ack_policy,
            },
        }

    def validate(self):
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport {self.transport!r} not in {TRANSPORTS}"
            )
        if self.engine not in ENGINES:
            raise ValueError(f"engine {self.engine!r} not in {ENGINES}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.zero_copy_get and self.transport == "homa":
            raise ValueError(
                "zero_copy_get is a TCP send-path feature; the Homa "
                "front-end has no zero-copy reply path yet"
            )
        if self.reaper_idle_ns is not None and self.reaper_idle_ns <= 0:
            raise ValueError("reaper_idle_ns must be positive (or None)")
        for bound in ("capture_max_frames", "capture_max_bytes"):
            value = getattr(self, bound)
            if value is not None and value <= 0:
                raise ValueError(f"{bound} must be positive (or None)")
        if (self.capture_max_frames is not None or
                self.capture_max_bytes is not None) and not self.capture:
            raise ValueError(
                "capture_max_frames/capture_max_bytes need capture=True"
            )
        if self.ack_policy is not None:
            if self.ack_policy not in ("sync", "primary-only"):
                raise ValueError(
                    f"ack_policy {self.ack_policy!r} not in "
                    f"('sync', 'primary-only') (or None for standalone)"
                )
            if self.transport != "homa":
                raise ValueError(
                    "cluster mode (ack_policy) replicates over Homa; "
                    "transport must be 'homa'"
                )
        return self

    def with_overrides(self, **kwargs):
        """A copy with the given fields replaced (dataclasses.replace)."""
        return replace(self, **kwargs)


class Server:
    """What :func:`serve` returns: the front-end plus its wiring."""

    __slots__ = ("config", "host", "engine", "kv", "overload", "recorder",
                 "capture")

    def __init__(self, config, host, engine, kv, overload, recorder,
                 capture=None):
        self.config = config
        self.host = host
        self.engine = engine
        self.kv = kv
        self.overload = overload
        self.recorder = recorder
        #: CaptureTap recording this server's frame stream (None unless
        #: config.capture).
        self.capture = capture

    @property
    def metrics(self):
        """The MetricsRegistry, or None when metrics are disabled."""
        return self.recorder.registry if self.recorder is not None else None

    @property
    def stats(self):
        return self.kv.stats

    def __repr__(self):
        return (
            f"<Server {self.config.transport}:{self.config.port} "
            f"engine={self.config.engine} cores={self.config.cores}>"
        )


def build_engine(name, host, pm_ns=None, memtable_arena=48 << 20,
                 engine_kwargs=None):
    """Construct a storage engine by name, wired to ``host``.

    ``pm_ns`` (a :class:`~repro.pm.namespace.PMNamespace`) is required
    for the PM-backed engines (rawpm, novelsm*, pktstore).
    """
    engine_kwargs = dict(engine_kwargs or {})
    if name == "null":
        return NullEngine()
    if name == "leveldb-ssd":
        from repro.pm.device import DRAMDevice
        from repro.storage.blockdev import BlockDevice

        dram = DRAMDevice(256 << 20, name="server-dram")
        ssd = BlockDevice(512 << 20, name="server-ssd")
        store = leveldb_store(dram, ssd, arena_size=32 << 20)
        return LevelDBEngine(store, host.costs)
    if pm_ns is None:
        raise ValueError(f"engine {name!r} needs a PM namespace (pm_ns=)")
    if name == "rawpm":
        region = pm_ns.create("rawpm-ring", 96 << 20)
        return RawPMEngine(region, host.costs)
    if name in ("novelsm", "novelsm-nopersist"):
        store = novelsm_store(pm_ns, arena_size=memtable_arena)
        return NoveLSMEngine(
            store, host.costs,
            persistence=(name == "novelsm"),
            **engine_kwargs,
        )
    if name == "pktstore":
        from repro.core.pktstore import PacketStoreEngine

        return PacketStoreEngine.build(host, pm_ns, **engine_kwargs)
    raise ValueError(f"unknown engine {name!r}")


def serve(host, config=None, pm_ns=None, engine=None, recorder=None,
          cluster=None, **overrides):
    """Stand up a KV server on ``host`` as described by ``config``.

    - ``engine`` injects a pre-built engine instance (``config.engine``
      then only labels it); otherwise :func:`build_engine` runs.
    - ``recorder`` reuses an existing :class:`~repro.obs.trace.Recorder`
      (the testbed's, so client and fabric share the registry) instead
      of creating one; it implies metrics even if the config says off.
    - ``cluster`` (a :class:`~repro.cluster.topology.ClusterContext`)
      selects the cluster-mode front-end: the server becomes one shard
      of a replicated cluster, forwarding primary-owned puts to its
      backup per ``config.ack_policy``.  Requires ``transport="homa"``.
    - keyword ``overrides`` tweak a shared config ad hoc:
      ``serve(host, config, port=8080)``.

    Returns a :class:`Server` handle.
    """
    config = (config or ServerConfig())
    if overrides:
        config = config.with_overrides(**overrides)
    if cluster is not None and config.ack_policy is None:
        config = config.with_overrides(ack_policy=cluster.ack_policy)
    config.validate()
    if cluster is not None and config.transport != "homa":
        raise ValueError("cluster mode requires transport='homa'")
    if len(host.cpus) != config.cores:
        raise ValueError(
            f"config says {config.cores} core(s) but host "
            f"{host.name!r} has {len(host.cpus)} — build the host from "
            f"the same config (make_testbed(config=...)) or align them"
        )

    if engine is None:
        engine = build_engine(config.engine, host, pm_ns=pm_ns,
                              memtable_arena=config.memtable_arena,
                              engine_kwargs=config.engine_kwargs)

    overload = config.overload
    if overload is True:
        overload = OverloadController()
    if overload is not None and overload.sim is None:
        overload.sim = host.sim

    if config.transport == "homa":
        if cluster is not None:
            from repro.cluster.topology import ClusterKVServer

            kv = ClusterKVServer(host, engine, port=config.port,
                                 overload=overload,
                                 contain_errors=config.contain_errors,
                                 cluster_ctx=cluster)
        else:
            kv = HomaKVServer(host, engine, port=config.port, overload=overload,
                              contain_errors=config.contain_errors)
    else:
        kv = KVServer(host, engine, port=config.port,
                      zero_copy_get=config.zero_copy_get, overload=overload,
                      contain_errors=config.contain_errors)
        if config.reaper_idle_ns is not None:
            host.stack.enable_idle_reaper(config.reaper_idle_ns)

    if recorder is None and config.metrics:
        from repro.obs.trace import Recorder

        recorder = Recorder(sim=host.sim, trace_capacity=config.trace_capacity)
    if recorder is not None:
        recorder.attach_host(host, "server")
        recorder.attach_server(kv)
        recorder.attach_engine(engine)
        if overload is not None:
            recorder.attach_overload(overload)

    capture = None
    if config.capture:
        from repro.capture.tap import CaptureTap

        meta = config.capture_meta()
        meta["server_ip"] = host.ip
        meta["server_name"] = host.name
        capture = CaptureTap(
            host.nic.fabric, focus_ip=host.ip,
            max_frames=config.capture_max_frames,
            max_bytes=config.capture_max_bytes, meta=meta,
        )
        if recorder is not None:
            registry = recorder.registry
            registry.gauge("server.capture.buffered",
                           fn=lambda t=capture: float(len(t)))
            registry.gauge("server.capture.seen",
                           fn=lambda t=capture: float(t.seen_frames))
            registry.gauge("server.capture.evicted",
                           fn=lambda t=capture: float(t.dropped_frames))

    return Server(config, host, engine, kv, overload, recorder,
                  capture=capture)
