"""Byte-level skip list inside a memory region.

This is the memtable structure of LevelDB and NoveLSM, built the way a
PM data structure must be: every node lives as bytes inside a
:class:`~repro.pm.device.Region`, reached by chasing stored offsets.
Over a DRAM region it is LevelDB's volatile memtable; over a PM region,
with the crash-consistent linking discipline below, it is NoveLSM's
persistent memtable (the paper's §2.1/§3 subject, and the structure
§4.2 proposes rebuilding out of packet metadata).

Versioned like LevelDB: an insert never overwrites — it links a new
node ordered by ``(key ascending, sequence descending)``, so the first
node matching a key is its newest version and deletes are tombstone
inserts.

Node layout (offsets relative to the node's allocation)::

    0   u16 key_len
    2   u32 value_len
    6   u8  height
    7   u8  flags           (1 = tombstone)
    8   u64 sequence
    16  u32 value_crc32c
    20  u32 node_crc32c     (header bytes [0:20] + key bytes)
    24  u64 next[height]
    24+8h   key bytes
    ...     value bytes

Crash-consistent insert (PM): the node is fully written **and
persisted** before the level-0 predecessor pointer is updated and
fenced; higher-level pointers are flushed afterwards.  A crash
therefore leaves either (a) an unreachable allocation (recovery frees
it), or (b) a node reachable at level 0 with possibly-stale higher
links — which are still correct search hints, because an un-updated
``next[i]`` simply skips the new node.  Recovery walks level 0,
validates node CRCs, rebuilds the sequence counter and reconciles the
allocator.

Cost model: a search touches nodes by pointer-chasing.  Visits in the
bottom ``cold_levels`` levels are charged a full device access (346 ns
on PM vs 70 ns on DRAM — the §5.1 numbers); higher-level nodes are few
and hot, charged ``HOT_VISIT_NS``.  With the allocator's charge this
reproduces Table 1's 2.78 µs "buffer allocation and insertion" row.
"""

import struct

from repro.net.checksum import crc32c
from repro.pm.alloc import PMAllocator
from repro.sim.context import NULL_CONTEXT

MAX_HEIGHT = 16
TOMBSTONE = 1
MAX_SEQ = 1 << 62

ROOT = struct.Struct("<IQQ")  # magic, head_offset, reserved
ROOT_MAGIC = 0x5C1B11F7
ROOT_SIZE = 64

HEADER = struct.Struct("<HIBBQII")  # key_len, value_len, height, flags, seq, value_crc, node_crc
HEADER_SIZE = HEADER.size  # 24

#: Cost of touching a cache-resident (upper-level) node.
HOT_VISIT_NS = 25.0

#: Bottom levels whose nodes are assumed cache-cold (charged a device
#: access).  Two levels at branching factor 4 means ~5-6 cold visits per
#: insert, which together with the allocator charge reproduces Table 1's
#: 2.78 µs "buffer allocation and insertion" row; upper levels are few,
#: hot in cache, and charged HOT_VISIT_NS.
COLD_LEVELS = 2


class SkipListCorruption(RuntimeError):
    """A node failed its CRC or structural validation."""


class _XorShift:
    """Tiny deterministic RNG for node heights (no stdlib random state)."""

    def __init__(self, seed):
        self.state = (seed or 1) & 0xFFFFFFFFFFFFFFFF

    def next(self):
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self.state = x
        return x


class RegionSkipList:
    """Versioned sorted map of bytes keys/values inside a region."""

    def __init__(self, region, allocator, head_off, seq, rng,
                 insert_category="datamgmt.insert",
                 persist_category="persist",
                 branching=4, cold_levels=COLD_LEVELS):
        self.region = region
        self.allocator = allocator
        self.head_off = head_off
        self.insert_category = insert_category
        self.persist_category = persist_category
        #: Inverse promotion probability (LevelDB uses 4).
        self.branching = branching
        #: Bottom levels charged a full device access per visit.
        self.cold_levels = cold_levels
        self._seq = seq
        self._rng = rng
        self.count = 0          # live versions (excluding head)
        self.data_bytes = 0     # key+value payload bytes

    # ------------------------------------------------------------ construction

    @classmethod
    def create(cls, region, seed=1, insert_category="datamgmt.insert",
               persist_category="persist", branching=4, cold_levels=COLD_LEVELS):
        """Initialise a fresh skip list at the start of ``region``."""
        allocator = PMAllocator(
            region.subregion(ROOT_SIZE, region.size - ROOT_SIZE, f"{region.name}.heap"),
            charge_category=insert_category,
            persist_category=persist_category,
        )
        slist = cls(region, allocator, 0, 1, _XorShift(seed),
                    insert_category, persist_category,
                    branching=branching, cold_levels=cold_levels)
        # Head node: zero-length key, full height, seq 0.
        head_off = slist._write_node(
            b"", b"", MAX_HEIGHT, 0, 0,
            [0] * MAX_HEIGHT, NULL_CONTEXT,
        )
        slist.head_off = head_off
        region.write(0, ROOT.pack(ROOT_MAGIC, head_off, 0))
        region.persist(0, ROOT.size, NULL_CONTEXT)
        return slist

    @classmethod
    def recover(cls, region, seed=1, insert_category="datamgmt.insert",
                persist_category="persist"):
        """Rebuild after a crash from the region's persisted contents."""
        allocator = PMAllocator.attach(
            region.subregion(ROOT_SIZE, region.size - ROOT_SIZE, f"{region.name}.heap"),
            charge_category=insert_category,
            persist_category=persist_category,
        )
        live = {offset + ROOT_SIZE for offset in allocator.recover()}
        magic, head_off, _ = ROOT.unpack(region.read(0, ROOT.size))
        if magic != ROOT_MAGIC:
            raise SkipListCorruption("no skip list root in region")
        slist = cls(region, allocator, head_off, 1, _XorShift(seed),
                    insert_category, persist_category)
        reachable = {head_off}
        max_seq = 0
        prev = head_off
        cursor = slist._next_of(head_off, 0)
        while cursor:
            if cursor not in live or not slist._validate_node(cursor):
                # Persist-before-link makes this unreachable in a clean
                # run; tolerate it by truncating the chain defensively.
                slist._set_next(prev, 0, 0, NULL_CONTEXT, fence=True)
                break
            header = slist._header(cursor)
            key_len, value_len, _h, _flags, seq, _vcrc, _ncrc = header
            max_seq = max(max_seq, seq)
            slist.count += 1
            slist.data_bytes += key_len + value_len
            reachable.add(cursor)
            prev = cursor
            cursor = slist._next_of(cursor, 0)
        # Allocated-but-never-linked nodes (crash mid-insert) are garbage.
        for offset in live - reachable:
            allocator.free(offset - ROOT_SIZE)
        slist._seq = max_seq + 1
        return slist

    # ------------------------------------------------------------- node access

    def _header(self, node_off):
        return self.region.unpack(HEADER, node_off)

    def _node_key(self, node_off, key_len, height):
        return self.region.read(node_off + HEADER_SIZE + 8 * height, key_len)

    def _node_value(self, node_off, key_len, value_len, height):
        return self.region.read(
            node_off + HEADER_SIZE + 8 * height + key_len, value_len
        )

    def _next_of(self, node_off, level):
        return self.region.read_u64(node_off + HEADER_SIZE + 8 * level)

    def _set_next(self, node_off, level, target, ctx, fence=False):
        addr = node_off + HEADER_SIZE + 8 * level
        self.region.write(addr, struct.pack("<Q", target))
        self.region.flush(addr, 8, ctx, self.persist_category)
        if fence:
            self.region.fence(ctx, self.persist_category)

    def _node_size(self, key_len, value_len, height):
        return HEADER_SIZE + 8 * height + key_len + value_len

    def _node_crc(self, header_bytes20, key):
        return crc32c(key, seed=crc32c(header_bytes20))

    def _alloc_node(self, size, ctx):
        """Allocate node space; returns a region-coordinate offset.

        The allocator manages the heap subregion starting at ROOT_SIZE,
        so its payload offsets are translated into region coordinates
        (which is what every stored ``next`` pointer holds; 0 stays the
        nil sentinel because real nodes always sit past the root area).
        """
        return self.allocator.alloc(size, ctx) + ROOT_SIZE

    def _free_node(self, node_off, ctx=NULL_CONTEXT):
        self.allocator.free(node_off - ROOT_SIZE, ctx)

    def _write_node(self, key, value, height, flags, seq, nexts, ctx):
        size = self._node_size(len(key), len(value), height)
        node_off = self._alloc_node(size, ctx)
        header20 = struct.pack(
            "<HIBBQI", len(key), len(value), height, flags, seq, crc32c(value)
        )
        node_crc = self._node_crc(header20, key)
        blob = (
            header20
            + struct.pack("<I", node_crc)
            + b"".join(struct.pack("<Q", nxt) for nxt in nexts)
            + key
            + value
        )
        self.region.write(node_off, blob)
        self.region.persist(node_off, len(blob), ctx, self.persist_category)
        return node_off

    def _validate_node(self, node_off):
        try:
            key_len, value_len, height, _flags, _seq, _vcrc, node_crc = self._header(node_off)
        except Exception:
            return False
        if not 1 <= height <= MAX_HEIGHT:
            return False
        if node_off + self._node_size(key_len, value_len, height) > self.region.size:
            return False
        header20 = self.region.read(node_off, 20)
        key = self._node_key(node_off, key_len, height)
        return self._node_crc(header20, key) == node_crc

    # ------------------------------------------------------------ cost charges

    def _charge_visit(self, ctx, level, advanced=True):
        # Level 0 is always cold (every node there is unique memory);
        # on the next cold_levels-1 levels only nodes we actually step
        # past are cold — the boundary node that ends the walk was just
        # read at the level above and is still cached.
        cold = level == 0 or (level < self.cold_levels and advanced)
        if cold:
            self.region.charge_access(ctx, 1, self.insert_category)
        else:
            ctx.charge(HOT_VISIT_NS, self.insert_category)

    # ----------------------------------------------------------------- ordering

    @staticmethod
    def _order(key, seq):
        """Total order: key ascending, newest version first."""
        return (key, MAX_SEQ - seq)

    def _find_predecessors(self, order_key, ctx):
        """Per-level last nodes strictly before ``order_key``."""
        preds = [self.head_off] * MAX_HEIGHT
        node = self.head_off
        # The walk dominates every insert; alias the per-visit helpers
        # and charge inline (identical amounts/categories to
        # :meth:`_charge_visit`, which the non-hot paths still use).
        region = self.region
        next_of = self._next_of
        header_of = self._header
        node_key = self._node_key
        category = self.insert_category
        cold_levels = self.cold_levels
        cold_ns = region.device.access_ns
        charge = ctx.charge
        for level in range(MAX_HEIGHT - 1, -1, -1):
            nxt = next_of(node, level)
            while nxt:
                key_len, _vl, height, _fl, seq, _vc, _nc = header_of(nxt)
                key = node_key(nxt, key_len, height)
                advanced = (key, MAX_SEQ - seq) < order_key
                if level == 0 or (level < cold_levels and advanced):
                    charge(cold_ns, category)
                else:
                    charge(HOT_VISIT_NS, category)
                if advanced:
                    node = nxt
                    nxt = next_of(node, level)
                else:
                    break
            preds[level] = node
        return preds

    def _random_height(self):
        height = 1
        while height < MAX_HEIGHT and self._rng.next() % self.branching == 0:
            height += 1  # p = 1/branching; LevelDB uses 4
        return height

    # ----------------------------------------------------------------- mutation

    def insert(self, key, value, ctx=NULL_CONTEXT, tombstone=False):
        """Add a new version of ``key``.  Returns its sequence number."""
        if not key:
            raise ValueError("empty keys are reserved for the head node")
        seq = self._seq
        self._seq += 1
        order_key = self._order(key, seq)
        preds = self._find_predecessors(order_key, ctx)
        height = self._random_height()
        nexts = [self._next_of(preds[level], level) for level in range(height)]
        flags = TOMBSTONE if tombstone else 0
        node_off = self._write_node(key, value, height, flags, seq, nexts, ctx)
        # Level 0 makes the node visible; fence before touching hints.
        self._set_next(preds[0], 0, node_off, ctx, fence=True)
        for level in range(1, height):
            self._set_next(preds[level], level, node_off, ctx, fence=False)
        if height > 1:
            self.region.fence(ctx, self.persist_category)
        self.count += 1
        self.data_bytes += len(key) + len(value)
        return seq

    def delete(self, key, ctx=NULL_CONTEXT):
        """Tombstone insert (LSM delete)."""
        return self.insert(key, b"", ctx, tombstone=True)

    # ------------------------------------------------------------------- reads

    def get(self, key, ctx=NULL_CONTEXT, verify=False):
        """Latest value for ``key``.

        Returns ``(found, value)``: ``(False, None)`` if the key never
        existed here, ``(True, None)`` if its newest version is a
        tombstone, ``(True, bytes)`` otherwise.
        """
        preds = self._find_predecessors(self._order(key, MAX_SEQ), ctx)
        node = self._next_of(preds[0], 0)
        if not node:
            return False, None
        key_len, value_len, height, flags, _seq, value_crc, _nc = self._header(node)
        stored_key = self._node_key(node, key_len, height)
        if stored_key != key:
            return False, None
        if flags & TOMBSTONE:
            return True, None
        value = self._node_value(node, key_len, value_len, height)
        if verify and crc32c(value) != value_crc:
            raise SkipListCorruption(f"value CRC mismatch for key {key!r}")
        return True, value

    def versions(self):
        """Every stored version in order: (key, seq, tombstone, value)."""
        node = self._next_of(self.head_off, 0)
        while node:
            key_len, value_len, height, flags, seq, _vc, _nc = self._header(node)
            key = self._node_key(node, key_len, height)
            value = self._node_value(node, key_len, value_len, height)
            yield key, seq, bool(flags & TOMBSTONE), value
            node = self._next_of(node, 0)

    def scan(self, start=None, end=None):
        """Latest live versions with start <= key < end, in key order."""
        last_key = None
        for key, _seq, tombstone, value in self.versions():
            if key == last_key:
                continue  # older version
            last_key = key
            if start is not None and key < start:
                continue
            if end is not None and key >= end:
                break
            if not tombstone:
                yield key, value

    def __len__(self):
        """Number of distinct live keys (scan-based; O(n))."""
        return sum(1 for _ in self.scan())

    # -------------------------------------------------------------- validation

    def check_invariants(self):
        """Ordering + height-chain consistency (used by property tests)."""
        for level in range(MAX_HEIGHT):
            node = self._next_of(self.head_off, level)
            prev_order = None
            while node:
                key_len, _vl, height, _fl, seq, _vc, _nc = self._header(node)
                assert level < height, "node linked above its height"
                key = self._node_key(node, key_len, height)
                order = self._order(key, seq)
                if prev_order is not None:
                    assert prev_order < order, f"order violated at level {level}"
                prev_order = order
                node = self._next_of(node, level)
        # Every higher-level chain is a subsequence of level 0.
        level0 = set()
        node = self._next_of(self.head_off, 0)
        while node:
            level0.add(node)
            node = self._next_of(node, 0)
        for level in range(1, MAX_HEIGHT):
            node = self._next_of(self.head_off, level)
            while node:
                assert node in level0, "higher-level node missing from level 0"
                node = self._next_of(node, level)
        return True

    def __repr__(self):
        return f"<RegionSkipList {self.count} versions, {self.data_bytes}B in {self.region.name}>"
