"""The LSM-tree key-value store (LevelDB / NoveLSM).

A faithful-in-structure log-structured merge store:

- writes go to a skip-list **memtable** (versioned, tombstone deletes);
- when the memtable fills, it rotates and flushes to a level-0
  **SSTable**; level 0 may hold overlapping tables (newest first);
- when level 0 grows past a threshold, it is merge-**compacted** with
  level 1 into non-overlapping tables;
- a **manifest** on the block device records the live tables, and a
  **WAL** (when configured) makes un-flushed memtable writes durable.

Two configurations reproduce the paper's systems:

- :func:`leveldb_store` — DRAM memtable + WAL + compaction: the
  disk-era design (§2.1).
- :func:`novelsm_store` — PM memtable (crash-consistent persistent
  skip list), **no WAL**, and — as configured in the paper's §3
  experiment — compaction disabled so all data management happens in
  PM.  Value checksums (CRC32C) are charged by the engine layer, as
  the paper implemented them in NoveLSM.

Flush and compaction run synchronously (the simulator is single
threaded); the paper's experiment disables compaction anyway, and the
synchronous cost model is noted in DESIGN.md.
"""

import struct

from repro.net.checksum import crc32c
from repro.sim.context import NULL_CONTEXT
from repro.storage.skiplist import RegionSkipList
from repro.storage.sstable import SSTable, SSTableBuilder
from repro.storage.wal import WriteAheadLog

WAL_OP_PUT = 1
WAL_OP_DELETE = 2
WAL_RECORD = struct.Struct("<BHI")

MANIFEST_MAGIC = 0x4D414E49
NUM_LEVELS = 7


class LSMStore:
    """Memtable + leveled SSTables, with optional WAL and compaction."""

    def __init__(self, arena_provider, arena_size, blockdev=None, wal=None,
                 memtable_limit=16 << 20, compaction=True, max_l0_tables=4,
                 level1_table_bytes=2 << 20, manifest_base=0,
                 table_heap_base=0, seed=1, bootstrap=True):
        self._arena_provider = arena_provider
        self._arena_size = arena_size
        self.blockdev = blockdev
        self.wal = wal
        self.memtable_limit = memtable_limit
        self.compaction = compaction
        self.max_l0_tables = max_l0_tables
        self.level1_table_bytes = level1_table_bytes
        self.manifest_base = manifest_base
        self.seed = seed
        self._arena_counter = 0
        self._free_arenas = []
        self._table_counter = 0
        self._table_cursor = table_heap_base
        # ``bootstrap=False`` skips creating (and thus re-initialising!)
        # the first memtable arena — the reattach path after a crash
        # assigns a recovered memtable instead.
        self.memtable = self._new_memtable() if bootstrap else None
        self.immutable = None
        #: levels[0] is newest-first and may overlap; deeper levels are
        #: key-disjoint and sorted by first key.
        self.levels = [[] for _ in range(NUM_LEVELS)]
        self.stats = {"puts": 0, "gets": 0, "deletes": 0, "rotations": 0, "compactions": 0}

    # ----------------------------------------------------------------- arenas

    def _new_memtable(self):
        if self._free_arenas:
            # Recycle the arena of a previously-flushed memtable (what
            # deleting the immutable memtable does in real LevelDB).
            region = self._free_arenas.pop()
        else:
            region = self._arena_provider(f"memtable-{self._arena_counter}")
        self._arena_counter += 1
        return RegionSkipList.create(region, seed=self.seed + self._arena_counter)

    # -------------------------------------------------------------------- API

    def put(self, key, value, ctx=NULL_CONTEXT):
        """Insert/overwrite ``key``.  Durable per the configuration:
        WAL-synced (LevelDB) or persistently memtabled (NoveLSM)."""
        if self.wal is not None:
            record = WAL_RECORD.pack(WAL_OP_PUT, len(key), len(value)) + key + value
            self.wal.append(record, ctx)
        self.memtable.insert(key, value, ctx)
        self.stats["puts"] += 1
        self._maybe_rotate(ctx)

    def delete(self, key, ctx=NULL_CONTEXT):
        if self.wal is not None:
            record = WAL_RECORD.pack(WAL_OP_DELETE, len(key), 0) + key
            self.wal.append(record, ctx)
        self.memtable.delete(key, ctx)
        self.stats["deletes"] += 1
        self._maybe_rotate(ctx)

    def get(self, key, ctx=NULL_CONTEXT):
        """Latest value or None (missing or deleted)."""
        self.stats["gets"] += 1
        for table in (self.memtable, self.immutable):
            if table is None:
                continue
            found, value = table.get(key, ctx)
            if found:
                return value
        for sstable in self.levels[0]:  # newest first
            found, value = sstable.get(key, ctx)
            if found:
                return value
        for level in self.levels[1:]:
            for sstable in level:
                found, value = sstable.get(key, ctx)
                if found:
                    return value
        return None

    def scan(self, start=None, end=None, ctx=NULL_CONTEXT):
        """Sorted (key, value) pairs with start <= key < end.

        Correctness-oriented merge (newest version wins, tombstones
        hide): materialises the merged view, so use for range queries
        and tests, not bulk exports of huge stores.
        """
        merged = {}
        for level in reversed(self.levels[1:]):
            for sstable in level:
                for key, value, tombstone in sstable.entries(ctx):
                    merged[key] = None if tombstone else value
        for sstable in reversed(self.levels[0]):
            for key, value, tombstone in sstable.entries(ctx):
                merged[key] = None if tombstone else value
        for table in (self.immutable, self.memtable):
            if table is None:
                continue
            seen = set()
            for key, _seq, tombstone, value in table.versions():
                if key in seen:
                    continue  # first hit is newest
                seen.add(key)
                merged[key] = None if tombstone else value
        for key in sorted(merged):
            if start is not None and key < start:
                continue
            if end is not None and key >= end:
                break
            if merged[key] is not None:
                yield key, merged[key]

    # --------------------------------------------------------------- rotation

    def _maybe_rotate(self, ctx):
        if self.memtable.data_bytes < self.memtable_limit:
            return
        if not self.compaction and self.blockdev is None:
            return  # NoveLSM-as-measured: data stays in PM
        self.rotate(ctx)

    def rotate(self, ctx=NULL_CONTEXT):
        """Seal the memtable and flush it to a level-0 table."""
        self.stats["rotations"] += 1
        self.immutable = self.memtable
        self.memtable = self._new_memtable()
        self._flush_immutable(ctx)
        if self.wal is not None:
            self.wal.reset(ctx)
        if self.compaction and len(self.levels[0]) > self.max_l0_tables:
            self.compact_l0(ctx)

    def _flush_immutable(self, ctx):
        builder = SSTableBuilder()
        last_key = None
        for key, _seq, tombstone, value in self.immutable.versions():
            if key == last_key:
                continue
            last_key = key
            builder.add(key, value, tombstone)
        if builder.nentries:
            table = self._write_table(builder, ctx)
            self.levels[0].insert(0, table)
            self._write_manifest(ctx)
        self._free_arenas.append(self.immutable.region)
        self.immutable = None

    def _write_table(self, builder, ctx):
        blob = builder.finish()
        base = self._align(self._table_cursor)
        if base + len(blob) > self.blockdev.size:
            raise IOError("block device full (table heap exhausted)")
        name = f"sst-{self._table_counter}"
        self._table_counter += 1
        table = SSTable.write(self.blockdev, base, blob, ctx, name=name)
        self._table_cursor = base + len(blob)
        return table

    def _align(self, offset):
        block = self.blockdev.block_size
        return (offset + block - 1) // block * block

    # -------------------------------------------------------------- compaction

    def compact_l0(self, ctx=NULL_CONTEXT):
        """Merge every level-0 table with level 1, then cascade deeper
        levels that exceed their size budget (LevelDB's 10x fanout)."""
        merged = self.compact_level(0, ctx)
        # Leveled cascade: level i holds ~10^i * level1 budget of data.
        for level in range(1, NUM_LEVELS - 1):
            budget = self.level1_table_bytes * (10 ** level)
            if self._level_bytes(level) > budget:
                merged += self.compact_level(level, ctx)
        return merged

    def _level_bytes(self, level):
        return sum(table.length for table in self.levels[level])

    def _deepest_populated_level(self):
        for level in range(NUM_LEVELS - 1, -1, -1):
            if self.levels[level]:
                return level
        return 0

    def compact_level(self, level, ctx=NULL_CONTEXT):
        """Merge ``level`` into ``level + 1`` (whole-level merge).

        Tombstones are dropped only when the output is the deepest
        populated level — below that, a tombstone must keep hiding
        older versions that may still exist deeper down.
        """
        if level + 1 >= NUM_LEVELS:
            raise ValueError("cannot compact the deepest level")
        self.stats["compactions"] += 1
        target = level + 1
        sources = list(self.levels[level]) + list(self.levels[target])
        merged = {}
        # Oldest first so newer entries overwrite (level 0 is newest-first).
        older = list(self.levels[target])
        newer = list(reversed(self.levels[level])) if level == 0 else list(self.levels[level])
        for table in older + newer:
            for key, value, tombstone in table.entries(ctx):
                merged[key] = (value, tombstone)
        drop_tombstones = target >= self._deepest_populated_level()
        self.levels[level] = []
        self.levels[target] = []
        builder = SSTableBuilder()
        size = 0
        for key in sorted(merged):
            value, tombstone = merged[key]
            if tombstone and drop_tombstones:
                continue
            builder.add(key, value, tombstone=tombstone)
            size += len(key) + len(value)
            if size >= self.level1_table_bytes:
                self.levels[target].append(self._write_table(builder, ctx))
                builder, size = SSTableBuilder(), 0
        if builder.nentries:
            self.levels[target].append(self._write_table(builder, ctx))
        self._write_manifest(ctx)
        return len(sources)

    # ---------------------------------------------------------------- manifest

    def _write_manifest(self, ctx):
        if self.blockdev is None:
            return
        parts = [struct.pack("<II", MANIFEST_MAGIC, sum(len(l) for l in self.levels))]
        for level, tables in enumerate(self.levels):
            for table in tables:
                parts.append(struct.pack("<BQI", level, table.base, table.length))
        body = b"".join(parts)
        blob = struct.pack("<I", crc32c(body)) + body
        self.blockdev.write(self.manifest_base, blob, ctx, "manifest.write")
        self.blockdev.sync(ctx, "manifest.sync")

    def _read_manifest(self):
        head = self.blockdev.durable_view(self.manifest_base, 12)
        stored_crc, magic, count = struct.unpack("<III", head)
        if magic != MANIFEST_MAGIC:
            return None
        body_len = 8 + count * 13
        raw = self.blockdev.durable_view(self.manifest_base + 4, body_len)
        if crc32c(raw) != stored_crc:
            return None
        entries = []
        cursor = 8
        for _ in range(count):
            level, base, length = struct.unpack_from("<BQI", raw, cursor)
            cursor += 13
            entries.append((level, base, length))
        return entries

    # ---------------------------------------------------------------- recovery

    def recover(self, ctx=NULL_CONTEXT):
        """Rebuild volatile state after a crash.

        - Tables come back from the manifest.
        - With a WAL (LevelDB): the memtable is rebuilt by replay.
        - Without (NoveLSM): the persistent memtable recovers in place
          via :meth:`RegionSkipList.recover`.
        """
        if self.blockdev is not None:
            entries = self._read_manifest()
            self.levels = [[] for _ in range(NUM_LEVELS)]
            if entries:
                for level, base, length in entries:
                    table = SSTable(self.blockdev, base, length, name=f"recovered@{base}")
                    self.levels[level].append(table)
                    self._table_cursor = max(self._table_cursor, base + length)
                    self._table_counter += 1
        if self.wal is not None:
            self.memtable = self._new_memtable()
            for record in self.wal.replay(ctx):
                op, key_len, value_len = WAL_RECORD.unpack_from(record, 0)
                key = record[WAL_RECORD.size:WAL_RECORD.size + key_len]
                value = record[WAL_RECORD.size + key_len:
                               WAL_RECORD.size + key_len + value_len]
                if op == WAL_OP_PUT:
                    self.memtable.insert(key, value, ctx)
                elif op == WAL_OP_DELETE:
                    self.memtable.delete(key, ctx)
        else:
            region = self.memtable.region
            self.memtable = RegionSkipList.recover(region, seed=self.seed)
        self.immutable = None
        return self

    def __repr__(self):
        tables = sum(len(level) for level in self.levels)
        return (
            f"<LSMStore mem={self.memtable.data_bytes}B "
            f"tables={tables} wal={'yes' if self.wal else 'no'}>"
        )


# ----------------------------------------------------------------- factories

MANIFEST_BYTES = 64 << 10
WAL_BYTES = 16 << 20


def leveldb_store(dram_device, blockdev, arena_size=32 << 20,
                  memtable_limit=4 << 20, seed=1):
    """LevelDB configuration: DRAM memtable + WAL + compaction."""
    cursor = {"next": 0}

    def arena(name):
        base = cursor["next"]
        cursor["next"] += arena_size
        return dram_device.region(base, arena_size, name)

    wal = WriteAheadLog(blockdev, MANIFEST_BYTES, WAL_BYTES)
    return LSMStore(
        arena, arena_size, blockdev=blockdev, wal=wal,
        memtable_limit=memtable_limit, compaction=True,
        manifest_base=0, table_heap_base=MANIFEST_BYTES + WAL_BYTES, seed=seed,
    )


def novelsm_store(pm_namespace, arena_size=48 << 20, blockdev=None,
                  compaction=False, memtable_limit=16 << 20, seed=1):
    """NoveLSM configuration: persistent PM memtable, no log.

    The paper's §3 experiment additionally disables compaction so no
    data moves to disk during the run — the default here.
    """

    def arena(name):
        return pm_namespace.open_or_create(name, arena_size)

    table_heap = MANIFEST_BYTES if blockdev is not None else 0
    return LSMStore(
        arena, arena_size, blockdev=blockdev, wal=None,
        memtable_limit=memtable_limit, compaction=compaction,
        manifest_base=0, table_heap_base=table_heap, seed=seed,
    )


def novelsm_reattach(pm_namespace, arena_size=48 << 20, seed=1,
                     memtable_name="memtable-0"):
    """Reattach a NoveLSM store to its persisted PM memtable.

    The in-place :meth:`LSMStore.recover` only works on the live object
    that existed before ``device.crash()``.  After a real power cycle
    (or a fault-injection replay) all that exists is the device image:
    this reopens the named memtable arena through the recovered
    namespace **without re-initialising it** and rebuilds the skip list
    from its persisted bytes.
    """

    def arena(name):
        return pm_namespace.open_or_create(name, arena_size)

    store = LSMStore(
        arena, arena_size, blockdev=None, wal=None,
        compaction=False, manifest_base=0, seed=seed, bootstrap=False,
    )
    region = pm_namespace.open(memtable_name)
    store.memtable = RegionSkipList.recover(region, seed=seed + 1)
    store._arena_counter = 1
    store.count_recovered = store.memtable.count
    return store
