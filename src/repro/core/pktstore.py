"""The packet-native persistent key-value store (§4.2).

``PacketStore`` keeps values **in the packet buffers they arrived in**
and indexes them with a skip list whose nodes are persistent packet
metadata records.  Against NoveLSM's Table 1 cost structure:

=====================  =============  ===================================
Table 1 row            NoveLSM        PacketStore
=====================  =============  ===================================
request preparation    0.70 µs        ~0.15 µs (take references)
checksum               1.77 µs        0 — the NIC already verified the
                                      TCP checksum; the stored frame
                                      carries it (self-verifying)
data copy              1.14 µs        0 — the value stays where the NIC
                                      DMA'd it (PASTE PM buffers)
buffer alloc + insert  2.78 µs        slab pop (~0.1 µs) + the same
                                      skip-list traversal
flush CPU caches       1.94 µs        payload lines + one 256 B record
=====================  =============  ===================================

Timestamps come from the NIC (``hw_tstamp``), not ``clock_gettime``.

Crash-consistency protocol per put (§5.1):

1. flush the payload lines (they were DMA'd into the PM pool but sit
   in the caching hierarchy until written back),
2. persist any continuation records, then the main metadata record,
3. link at skip-list level 0 and fence — the commit point — then
   flush the higher-level hint links.

Recovery walks level 0 from the persisted root, CRC-validates every
record, re-adopts the referenced packet buffers, and reclaims
everything unreachable.  Acked writes always survive; in-flight writes
vanish atomically.
"""

import struct

from repro.core.ppktbuf import (
    FLAG_TOMBSTONE,
    FLAG_VALID,
    INLINE_FRAGS,
    KIND_CONT,
    KIND_HEAD,
    KIND_NODE,
    MAX_HEIGHT,
    PMetaSlab,
    PPktRecord,
    SlabExhausted,
)
from repro.core.recovery import RecoveryReport
from repro.net.nic import _tcp_checksum_of_frame
from repro.net.headers import ETH_HEADER_LEN, IPV4_HEADER_LEN, IPv4Header
from repro.sim.context import NULL_CONTEXT, ExecutionContext
from repro.storage.skiplist import COLD_LEVELS, HOT_VISIT_NS, _XorShift

MAX_SEQ = 1 << 62

#: Request preparation in the packet-native path: take references and
#: fill a 4-line record — no request object, no marshalling.
PREP_NS = 150.0


class PacketStore:
    """Skip list of persistent packet metadata over a PM packet pool."""

    def __init__(self, slab, pool, head_slot, seq, rng, verify_on_read=False):
        self.slab = slab
        self.pool = pool
        self.head_slot = head_slot
        self.verify_on_read = verify_on_read
        self._seq = seq
        self._rng = rng
        #: record slot -> list of PacketBuffer references we hold.
        self._refs = {}
        #: buffer slot -> a live PacketBuffer handle (for zero-copy tx).
        self._buffers = {}
        self.count = 0
        self.stats = {"puts": 0, "gets": 0, "deletes": 0, "frag_chains": 0}

    # ------------------------------------------------------------ construction

    @classmethod
    def create(cls, region, pool, seed=1, verify_on_read=False):
        slab = PMetaSlab(region)
        store = cls(slab, pool, 0, 1, _XorShift(seed), verify_on_read)
        head_slot = slab.alloc()
        head = PPktRecord(kind=KIND_HEAD, height=MAX_HEIGHT)
        slab.write_record(head_slot, head, NULL_CONTEXT)
        slab.write_root(head_slot)
        store.head_slot = head_slot
        return store

    @classmethod
    def recover(cls, region, pool, seed=1, verify_on_read=False, ctx=NULL_CONTEXT):
        """Rebuild from PM after a crash.  Returns (store, report)."""
        slab = PMetaSlab(region)
        report = RecoveryReport()
        scan_ctx = ExecutionContext()
        head_slot = slab.read_root()
        store = cls(slab, pool, head_slot, 1, _XorShift(seed), verify_on_read)
        reachable = {head_slot}
        materialized = {}
        max_seq = 0
        prev = head_slot
        cursor = slab.read_next(head_slot, 0)
        while cursor:
            slot = cursor - 1
            slab.region.charge_access(scan_ctx, 1, "recovery.scan")
            record = slab.valid_record(slot)
            if record is None or record.kind != KIND_NODE:
                # Persist-before-link should make this impossible; drop
                # the tail defensively and count it.
                slab.write_next(prev, 0, 0, ctx)
                report.discarded_records += 1
                if record is None:
                    report.crc_failures += 1
                break
            reachable.add(slot)
            refs = store._adopt_frags(slot, record, slab, materialized, reachable, report)
            store._refs[slot] = refs
            store._buffers.update(materialized)
            max_seq = max(max_seq, record.seq)
            store.count += 1
            report.recovered += 1
            prev = slot
            cursor = slab.read_next(slot, 0)
        # Orphans: slots carrying a valid-looking record that nothing
        # reaches — allocations in flight at the crash.  They simply
        # return to the free list (their magic is left behind, but the
        # free list never consults PM).  Their payload buffers, unless
        # shared with a reachable record, likewise stay on the pool free
        # list: those are the reclaimed buffers.
        magic_bytes = b"\x5e\x0f\x7b\x9c"  # RECORD_MAGIC little-endian
        reclaimed = set()
        for slot in range(slab.nslots):
            if slot in reachable:
                continue
            slab.region.charge_access(scan_ctx, 1, "recovery.scan")
            if slab.region.read(slab.slot_base(slot), 4) != magic_bytes:
                continue
            record = slab.valid_record(slot)
            if record is None:
                report.crc_failures += 1
            else:
                report.discarded_records += 1
                for buf_slot, _off, _length in record.frags:
                    if buf_slot not in materialized:
                        reclaimed.add(buf_slot)
        slab.adopt_reachable(reachable)
        report.max_seq = max_seq
        store._seq = max_seq + 1
        report.adopted_buffers = len(materialized)
        report.reclaimed_buffers = len(reclaimed)
        report.scan_cost_ns = scan_ctx.elapsed
        ctx.merge(scan_ctx)
        return store, report

    def _adopt_frags(self, slot, record, slab, materialized, reachable, report):
        """Re-take buffer references for a record and its continuations."""
        refs = []
        current = record
        while True:
            for buf_slot, _off, _length in current.frags:
                if buf_slot in materialized:
                    refs.append(materialized[buf_slot].get())
                else:
                    buf = self.pool.buffer_at_slot(buf_slot)
                    materialized[buf_slot] = buf
                    refs.append(buf)
            if not current.cont:
                break
            cont_slot = current.cont - 1
            reachable.add(cont_slot)
            current = slab.read_record(cont_slot)
        return refs

    # ------------------------------------------------------------- traversal

    def _charge_visit(self, ctx, level, advanced=True):
        # Same cache model as the storage skip list: level 0 cold,
        # higher cold levels cold only when stepping past a node.
        cold = level == 0 or (level < COLD_LEVELS and advanced)
        if cold:
            self.slab.region.charge_access(ctx, 1, "datamgmt.insert")
        else:
            ctx.charge(HOT_VISIT_NS, "datamgmt.insert")

    @staticmethod
    def _order(key, seq):
        return (key, MAX_SEQ - seq)

    def _find_predecessors(self, order_key, ctx):
        preds = [self.head_slot] * MAX_HEIGHT
        slot = self.head_slot
        for level in range(MAX_HEIGHT - 1, -1, -1):
            nxt = self.slab.read_next(slot, level)
            while nxt:
                record = self.slab.read_record(nxt - 1)
                advanced = self._order(record.key, record.seq) < order_key
                self._charge_visit(ctx, level, advanced)
                if advanced:
                    slot = nxt - 1
                    nxt = self.slab.read_next(slot, level)
                else:
                    break
            preds[level] = slot
        return preds

    def _random_height(self):
        height = 1
        while height < MAX_HEIGHT and self._rng.next() & 3 == 0:
            height += 1
        return height

    # ---------------------------------------------------------------- mutation

    def put(self, key, frag_refs, value_len, hw_tstamp, wire_csum,
            ctx=NULL_CONTEXT, tombstone=False):
        """Adopt payload references as the new version of ``key``.

        ``frag_refs`` is a list of ``(PacketBuffer, offset, length)``
        whose data references the caller has already taken (the store
        owns them from here on).  Nothing is copied.

        Failure is transactional: if the metadata slab cannot hold the
        record (``SlabExhausted``), every continuation slot already
        taken is freed and every adopted payload reference released
        before the exception propagates — an overloaded server answers
        507 without leaking a single pool slot.
        """
        if not key:
            for buf, _offset, _length in frag_refs:
                buf.put()
            raise ValueError("empty keys are reserved")
        self.stats["puts"] += 1
        seq = self._seq
        self._seq += 1

        # 1. Persist the packet where it lies — the *whole frame* from
        # the buffer start, not just the value slice: the frame's own
        # headers carry the TCP checksum that makes the stored object
        # self-verifying after a reboot (§4.2).  Headers add ~2 cache
        # lines to the flush.
        for buf, offset, length in frag_refs:
            buf.flush(0, offset + length, ctx, "persist")
        if frag_refs:
            self.pool.region.fence(ctx, "persist")

        # 2. Index traversal (the only data-management cost that remains).
        preds = self._find_predecessors(self._order(key, seq), ctx)
        height = self._random_height()

        # 3. Continuation records for > INLINE_FRAGS fragments.
        frag_tuples = [
            (buf.slot, offset, length) for buf, offset, length in frag_refs
        ]
        cont_slot_plus1 = 0
        cont_slots = []
        node_slot = None
        try:
            extra = frag_tuples[INLINE_FRAGS:]
            if extra:
                self.stats["frag_chains"] += 1
                chunks = [extra[i:i + INLINE_FRAGS] for i in range(0, len(extra), INLINE_FRAGS)]
                for chunk in reversed(chunks):
                    cont = PPktRecord(
                        kind=KIND_CONT, frags=chunk, cont=cont_slot_plus1,
                        seq=seq, value_len=0,
                    )
                    slot = self.slab.alloc(ctx)
                    cont_slots.append(slot)
                    self.slab.write_record(slot, cont, ctx)
                    cont_slot_plus1 = slot + 1

            # 4. The node record itself, persisted before linking.  The
            # record constructor validates the key (an oversized key
            # raises), so it must sit inside the rollback scope too.
            node_slot = self.slab.alloc(ctx)
            record = PPktRecord(
                kind=KIND_NODE,
                flags=FLAG_VALID | (FLAG_TOMBSTONE if tombstone else 0),
                height=height,
                key=key,
                seq=seq,
                hw_tstamp=hw_tstamp or 0,
                wire_csum=wire_csum or 0,
                value_len=value_len,
                cont=cont_slot_plus1,
                frags=frag_tuples[:INLINE_FRAGS],
                nexts=[self.slab.read_next(preds[i], i) if i < height else 0
                       for i in range(MAX_HEIGHT)],
            )
            self.slab.write_record(node_slot, record, ctx)
        except Exception:
            # Roll back whatever failed — slab exhaustion or a bad
            # record: nothing is linked yet, so freeing the slots and
            # dropping the payload references restores the pre-put state
            # exactly (the burned seq is harmless — seqs only order).
            if node_slot is not None:
                self.slab.free(node_slot, ctx)
            for slot in cont_slots:
                self.slab.free(slot, ctx)
            for buf, _offset, _length in frag_refs:
                buf.put()
            raise
        self._refs[node_slot] = [buf for buf, _o, _l in frag_refs]
        for buf, _o, _l in frag_refs:
            self._buffers[buf.slot] = buf

        # 5. Commit: level-0 link with a fence, then the hint levels.
        self.slab.write_next(preds[0], 0, node_slot + 1, ctx, fence=True)
        for level in range(1, height):
            self.slab.write_next(preds[level], level, node_slot + 1, ctx, fence=False)
        if height > 1:
            self.slab.region.fence(ctx, "persist")
        self.count += 1
        return seq

    def delete(self, key, ctx=NULL_CONTEXT):
        """Tombstone the key (a metadata-only record, no payload)."""
        self.stats["deletes"] += 1
        return self.put(key, [], 0, None, None, ctx, tombstone=True)

    # ----------------------------------------------------------------- GC

    def _unlink(self, node_slot, record, ctx):
        """Remove one node from every level it appears on, then free it.

        Crash-consistent the same way insertion is: the level-0 relink
        is fenced (the commit point — the node stops being content);
        higher-level hints follow.  A crash between frees leaves
        unreachable records that recovery reclaims.
        """
        preds = self._find_predecessors(self._order(record.key, record.seq), ctx)
        # Relink top-down so searches racing a crash stay correct.
        for level in range(record.height - 1, -1, -1):
            if self.slab.read_next(preds[level], level) == node_slot + 1:
                self.slab.write_next(
                    preds[level], level,
                    self.slab.read_next(node_slot, level),
                    ctx, fence=(level == 0),
                )
        # Free the continuation chain, then the node.
        cont = record.cont
        while cont:
            cont_record = self.slab.read_record(cont - 1)
            self.slab.free(cont - 1, ctx)
            cont = cont_record.cont
        self.slab.free(node_slot, ctx)
        # Drop our payload references; fully-released buffers leave the map.
        for buf in self._refs.pop(node_slot, []):
            if buf.put() == 0:
                self._buffers.pop(buf.slot, None)
        self.count -= 1

    def gc(self, ctx=NULL_CONTEXT, drop_tombstones=True):
        """Reclaim superseded versions (and, optionally, tombstones).

        The packet store appends versions like an LSM; this is its
        compaction: for every key only the newest version survives, and
        a newest-version tombstone is dropped entirely (single-level
        store: nothing older can resurface).  Returns the number of
        records reclaimed.
        """
        victims = []
        last_key = None
        cursor = self.slab.read_next(self.head_slot, 0)
        while cursor:
            slot = cursor - 1
            record = self.slab.read_record(slot)
            cursor = self.slab.read_next(slot, 0)
            if record.key == last_key:
                victims.append((slot, record))       # superseded version
            else:
                last_key = record.key
                if drop_tombstones and record.tombstone:
                    victims.append((slot, record))   # newest is a delete
        for slot, record in victims:
            self._unlink(slot, record, ctx)
        return len(victims)

    # ------------------------------------------------------------------- reads

    def _first_version_slot(self, key, ctx):
        preds = self._find_predecessors(self._order(key, MAX_SEQ), ctx)
        nxt = self.slab.read_next(preds[0], 0)
        if not nxt:
            return None
        record = self.slab.read_record(nxt - 1)
        if record.key != key:
            return None
        return nxt - 1

    def get(self, key, ctx=NULL_CONTEXT):
        """Latest value bytes, or None (missing or tombstoned)."""
        self.stats["gets"] += 1
        slot = self._first_version_slot(key, ctx)
        if slot is None:
            return None
        record = self.slab.read_record(slot)
        if record.tombstone:
            return None
        if self.verify_on_read:
            self.verify_slot(slot, ctx)
        return b"".join(
            self.pool.region.read(self.pool.slot_region_base(buf_slot) + off, length)
            for buf_slot, off, length in self._all_frags(record)
        )

    def get_refs(self, key, ctx=NULL_CONTEXT):
        """Zero-copy read: (record, [(buf_slot, offset, length), ...]).

        For transmitting straight out of the store (psend path).
        """
        slot = self._first_version_slot(key, ctx)
        if slot is None:
            return None, []
        record = self.slab.read_record(slot)
        if record.tombstone:
            return record, []
        return record, self._all_frags(record)

    def buffer_handle(self, buf_slot):
        """A live handle for a payload buffer slot (zero-copy transmit)."""
        return self._buffers[buf_slot]

    def _all_frags(self, record):
        frags = list(record.frags)
        cont = record.cont
        while cont:
            cont_record = self.slab.read_record(cont - 1)
            frags.extend(cont_record.frags)
            cont = cont_record.cont
        return frags

    # -------------------------------------------------------------- integrity

    def verify_slot(self, node_slot, ctx=NULL_CONTEXT):
        """Verify stored data via the packets' own TCP checksums.

        The stored object is the frame the NIC received, checksum
        included — so integrity checking is recomputing the TCP
        checksum over each referenced frame and comparing it with the
        one embedded in that frame.  No separate stored CRC needed:
        this is §4.2's reuse of the wire checksum.
        """
        record = self.slab.read_record(node_slot)
        checked = set()
        for buf_slot, _off, _length in self._all_frags(record):
            if buf_slot in checked:
                continue
            checked.add(buf_slot)
            base = self.pool.slot_region_base(buf_slot)
            head = self.pool.region.read(base, ETH_HEADER_LEN + IPV4_HEADER_LEN)
            ip = IPv4Header.unpack(head[ETH_HEADER_LEN:])
            frame_len = ETH_HEADER_LEN + ip.total_len
            frame = self.pool.region.read(base, frame_len)
            (stored,) = struct.unpack_from(
                "!H", frame, ETH_HEADER_LEN + IPV4_HEADER_LEN + 16
            )
            # Charge the CRC-equivalent cost only when actively verifying.
            ctx.charge(frame_len * 1.1, "integrity.verify")
            if _tcp_checksum_of_frame(frame) != stored:
                raise IOError(
                    f"frame in buffer slot {buf_slot} failed its wire checksum"
                )
        return len(checked)

    # ------------------------------------------------------------------- scans

    def versions(self):
        cursor = self.slab.read_next(self.head_slot, 0)
        while cursor:
            record = self.slab.read_record(cursor - 1)
            yield record
            cursor = self.slab.read_next(cursor - 1, 0)

    def scan(self, start=None, end=None):
        """Latest live (key, value) pairs in key order."""
        last_key = None
        for record in self.versions():
            if record.key == last_key:
                continue
            last_key = record.key
            if start is not None and record.key < start:
                continue
            if end is not None and record.key >= end:
                break
            if not record.tombstone:
                yield record.key, b"".join(
                    self.pool.region.read(
                        self.pool.slot_region_base(buf_slot) + off, length
                    )
                    for buf_slot, off, length in self._all_frags(record)
                )

    def __len__(self):
        return sum(1 for _ in self.scan())

    def __repr__(self):
        return f"<PacketStore {self.count} versions, slab={self.slab!r}>"


class PacketStoreEngine:
    """KVServer engine wrapping :class:`PacketStore` (PASTE hosts only)."""

    name = "pktstore"

    def __init__(self, store, costs):
        self.store = store
        self.costs = costs
        self.puts = 0
        self.gets = 0
        self.reclaims = 0

    @property
    def pressure_sources(self):
        """Watchable sources beyond the host pools: the metadata slab.

        (The payload pool *is* the host rx pool, which the server
        watches directly.)
        """
        from repro.core.overload import SlabPressure

        if not hasattr(self, "_slab_pressure"):
            self._slab_pressure = SlabPressure(self.store.slab)
        return (self._slab_pressure,)

    def reclaim(self, ctx=NULL_CONTEXT):
        """Emergency compaction: drop superseded versions and tombstones.

        The overload controller calls this when a pool or the slab
        crosses its high watermark; returns records reclaimed.
        """
        self.reclaims += 1
        return self.store.gc(ctx)

    @classmethod
    def build(cls, server_host, pm_ns, meta_bytes=32 << 20,
              verify_on_read=False, region_name="pktstore-meta"):
        if not server_host.rx_pool.persistent:
            raise ValueError(
                "PacketStore needs PASTE mode: the host's rx packet pool "
                "must live in persistent memory"
            )
        region = pm_ns.open_or_create(region_name, meta_bytes)
        store = PacketStore.create(region, server_host.rx_pool,
                                   verify_on_read=verify_on_read)
        return cls(store, server_host.costs)

    def put(self, key, message, ctx=NULL_CONTEXT):
        # Request preparation shrinks to taking references (§4.2).
        ctx.charge(PREP_NS, "datamgmt.prep")
        frag_refs = []
        for chunk in message.body_slices:
            buf, offset, length = chunk.buffer_ref()
            frag_refs.append((buf.get(), offset, length))
        self.store.put(
            bytes(key), frag_refs, message.content_length,
            message.hw_tstamp, message.wire_csum, ctx,
        )
        self.puts += 1

    def get(self, key, ctx=NULL_CONTEXT):
        self.gets += 1
        return self.store.get(bytes(key), ctx)

    def delete(self, key, ctx=NULL_CONTEXT):
        ctx.charge(PREP_NS, "datamgmt.prep")
        self.store.delete(bytes(key), ctx)

    def scan(self, start=None, end=None, ctx=NULL_CONTEXT):
        return self.store.scan(start, end)
