"""The paper's proposal: packets as persistent in-memory data structures.

Everything in §4-§5 of the paper, built on the substrates:

- :mod:`repro.core.ppktbuf` — *persistent packet metadata*: a compact,
  cache-line-friendly, CRC-protected record in PM that captures what an
  ``sk_buff`` knows (payload references, NIC hardware timestamp, the
  NIC-verified TCP checksum) plus skip-list links, so the metadata
  itself is the storage index node (§4.1, §5.1).
- :mod:`repro.core.pktstore` — the packet-native key-value store
  (§4.2): values stay in the PM packet buffers they were DMA'd into
  (zero copy), integrity comes from the reused TCP checksum (zero
  CPU), timestamps from the NIC, and allocation from the packet pools
  — eliminating, by construction, the checksum/copy/allocator rows of
  Table 1.
- :mod:`repro.core.pktfs` — the packet-metadata file system sketch
  (§4.2): inodes are chains of persistent packet metadata; files can
  be ingested straight from received packets and served zero-copy.
- :mod:`repro.core.recovery` — shared post-crash scanning helpers and
  the recovery report.
- :mod:`repro.core.api` — the post-POSIX interface (§5.1):
  ``precv``/``psend`` pass packet metadata between stack and storage
  application instead of copying byte streams.
"""

from repro.core.ppktbuf import PPktRecord, PMetaSlab
from repro.core.pktstore import PacketStore, PacketStoreEngine
from repro.core.pktfs import PktFS
from repro.core.recovery import RecoveryReport
from repro.core.api import PacketIO

__all__ = [
    "PPktRecord",
    "PMetaSlab",
    "PacketStore",
    "PacketStoreEngine",
    "PktFS",
    "RecoveryReport",
    "PacketIO",
]
