"""Post-POSIX I/O: passing packet metadata instead of byte streams (§5.1).

POSIX sockets copy: ``read`` drains bytes out of packet buffers into
the caller's memory, ``write`` copies them back into fresh buffers.
The paper argues the storage application should instead exchange
*packet metadata* with the stack — like FreeBSD's in-kernel ``sosend``,
which accepts an mbuf chain.

:class:`PacketIO` is that interface over a :class:`~repro.net.stack.Socket`:

- :meth:`precv` — register a handler that receives the packet metadata
  (:class:`~repro.net.tcp.RxSegment`) of each in-order delivery.  The
  handler may ``retain()`` the segment and hold the underlying (PM)
  buffer forever — that is how a storage stack adopts payload.
- :meth:`psend` — transmit ``(buffer, offset, length)`` references;
  the payload is attached as frag pages and never copied.
- :meth:`psend_record` / :meth:`psend_file` — convenience: transmit a
  packet store record or a PktFS file straight from persistent memory.
"""

from repro.sim.context import NULL_CONTEXT


class PacketIO:
    """Metadata-passing I/O on one connection."""

    def __init__(self, socket):
        self.socket = socket
        self.rx_segments = 0
        self.tx_bytes = 0

    # -- receive ---------------------------------------------------------------

    def precv(self, handler):
        """``handler(packet_io, segment, ctx)`` gets each in-order segment.

        The segment is packet metadata: ``segment.pktbuf`` carries the
        NIC hardware timestamp, the verified wire checksum and the
        refcounted payload buffer.  Call ``segment.retain()`` to keep
        it past the callback (zero-copy adoption).
        """

        def _bridge(sock, segment, ctx):
            self.rx_segments += 1
            handler(self, segment, ctx)

        self.socket.on_data = _bridge
        return self

    # -- transmit ---------------------------------------------------------------

    def psend(self, refs, ctx=NULL_CONTEXT):
        """Send buffer references zero-copy.

        ``refs`` is an iterable of ``(PacketBuffer, offset, length)``.
        Each becomes a frag page of outgoing segments; the transport's
        clones keep the buffers alive until cumulatively ACKed.
        """
        total = 0
        for buf, offset, length in refs:
            self.socket.send_buffer(buf, offset, length, ctx)
            total += length
        self.tx_bytes += total
        return total

    def psend_bytes(self, data, ctx=NULL_CONTEXT):
        """Classic copying send, for headers and small control data."""
        self.socket.send(data, ctx)
        self.tx_bytes += len(data)
        return len(data)

    def psend_record(self, store, key, ctx=NULL_CONTEXT):
        """Transmit a packet-store value straight from PM.

        Returns the byte count, or None if the key is absent.
        """
        record, frags = store.get_refs(key, ctx)
        if record is None or record.tombstone:
            return None
        refs = [
            (store.buffer_handle(buf_slot), offset, length)
            for buf_slot, offset, length in frags
        ]
        return self.psend(refs, ctx)

    def psend_file(self, fs, name, ctx=NULL_CONTEXT):
        """Transmit a PktFS file straight from its extents."""
        return self.psend(fs.extent_refs(name), ctx)

    def close(self, ctx=NULL_CONTEXT):
        self.socket.close(ctx)

    def __repr__(self):
        return f"<PacketIO rx={self.rx_segments} tx={self.tx_bytes}B>"
