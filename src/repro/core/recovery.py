"""Shared post-crash recovery reporting.

Both the packet store and the packet file system recover the same way
(§5.1's crash-consistency agenda): walk the persistent metadata from a
named root, validate each record's CRC, adopt everything reachable,
and garbage-collect the rest (allocations that were in flight when the
power failed).  :class:`RecoveryReport` is the common summary.
"""


class RecoveryReport:
    """What a recovery pass found."""

    def __init__(self):
        #: Committed entries that survived (reachable + CRC-valid).
        self.recovered = 0
        #: Metadata records discarded (unreachable-but-intact orphans,
        #: i.e. allocations in flight at the crash).
        self.discarded_records = 0
        #: Record slots whose magic was intact but whose CRC (or
        #: structure) failed validation — torn metadata writes.
        self.crc_failures = 0
        #: Packet-buffer slots re-adopted as live payload.
        self.adopted_buffers = 0
        #: Packet-buffer slots referenced only by discarded records —
        #: they stay on the pool free list (returned to the pool).
        self.reclaimed_buffers = 0
        #: Highest sequence number seen (the store resumes after it).
        self.max_seq = 0
        #: Wall-clock-equivalent simulated cost of the scan, if charged.
        self.scan_cost_ns = 0.0

    def __repr__(self):
        return (
            f"<RecoveryReport recovered={self.recovered} "
            f"discarded={self.discarded_records} "
            f"crc_failures={self.crc_failures} "
            f"buffers={self.adopted_buffers}+{self.reclaimed_buffers}r>"
        )
