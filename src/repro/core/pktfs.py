"""PktFS: a file system whose inodes are packet metadata (§4.2).

The paper sketches a PM file system where "current inode structures
would be simplified, and packet metadata blocks will be maintained by
the file system alongside inode blocks": name, timestamps, checksum
and data links all come from (persistent) packet metadata.

PktFS realises the sketch with the same 256-byte
:class:`~repro.core.ppktbuf.PPktRecord` the packet store uses:

- an **inode** is a record of kind ``KIND_INODE``: the file name is
  the record key, the size is ``value_len``, the mtime is the NIC
  hardware timestamp (or the ingest time), the checksum field holds a
  CRC32C of the contents, and the frag list + continuation chain are
  the extent map into PM packet buffers;
- the **directory** is simply the level-0 chain of inode records —
  packet metadata linking packet metadata;
- **ingest** adopts received packets as file extents without copying
  (the §4.2 receive path); ``write`` is the classic copying path for
  locally-originated data; ``send_file`` transmits straight from the
  extents (the zero-copy send path, segmented by GSO/TSO).

Crash consistency follows the store's protocol: extents and inode are
persisted before the directory link, which is the commit point.
"""

from repro.core.ppktbuf import (
    INLINE_FRAGS,
    KIND_CONT,
    KIND_EXTENT,
    KIND_HEAD,
    KIND_INODE,
    PMetaSlab,
    PPktRecord,
)
from repro.core.recovery import RecoveryReport
from repro.net.checksum import crc32c
from repro.sim.context import NULL_CONTEXT


class FileStat:
    """What ``stat`` returns."""

    __slots__ = ("name", "size", "mtime", "checksum", "nextents")

    def __init__(self, name, size, mtime, checksum, nextents):
        self.name = name
        self.size = size
        self.mtime = mtime
        self.checksum = checksum
        self.nextents = nextents

    def __repr__(self):
        return f"<FileStat {self.name!r} {self.size}B extents={self.nextents}>"


class PktFSError(OSError):
    """File-system-level failures (missing files, duplicates)."""


class PktFS:
    """Packet-metadata file system over a PM pool + metadata slab."""

    def __init__(self, slab, pool, head_slot):
        self.slab = slab
        self.pool = pool
        self.head_slot = head_slot
        #: inode slot -> list of PacketBuffer references held.
        self._refs = {}
        self.stats = {"creates": 0, "ingests": 0, "reads": 0, "unlinks": 0}

    # ----------------------------------------------------------- construction

    @classmethod
    def create(cls, region, pool):
        slab = PMetaSlab(region)
        fs = cls(slab, pool, 0)
        head_slot = slab.alloc()
        slab.write_record(head_slot, PPktRecord(kind=KIND_HEAD, height=1))
        slab.write_root(head_slot)
        fs.head_slot = head_slot
        return fs

    @classmethod
    def recover(cls, region, pool, ctx=NULL_CONTEXT):
        """Remount after a crash; returns (fs, report)."""
        slab = PMetaSlab(region)
        report = RecoveryReport()
        head_slot = slab.read_root()
        fs = cls(slab, pool, head_slot)
        reachable = {head_slot}
        materialized = {}
        prev = head_slot
        cursor = slab.read_next(head_slot, 0)
        while cursor:
            slot = cursor - 1
            record = slab.valid_record(slot)
            if record is None or record.kind != KIND_INODE:
                slab.write_next(prev, 0, 0, ctx)
                report.discarded_records += 1
                break
            reachable.add(slot)
            refs = []
            current = record
            while True:
                for buf_slot, _off, _len in current.frags:
                    if buf_slot in materialized:
                        refs.append(materialized[buf_slot].get())
                    else:
                        buf = pool.buffer_at_slot(buf_slot)
                        materialized[buf_slot] = buf
                        refs.append(buf)
                if not current.cont:
                    break
                cont_slot = current.cont - 1
                reachable.add(cont_slot)
                current = slab.read_record(cont_slot)
            fs._refs[slot] = refs
            report.recovered += 1
            prev = slot
            cursor = slab.read_next(slot, 0)
        slab.adopt_reachable(reachable)
        report.adopted_buffers = len(materialized)
        return fs, report

    # -------------------------------------------------------------- directory

    def _find(self, name):
        """(prev_slot, inode_slot, record) or (prev, None, None)."""
        key = name.encode() if isinstance(name, str) else bytes(name)
        prev = self.head_slot
        cursor = self.slab.read_next(self.head_slot, 0)
        while cursor:
            record = self.slab.read_record(cursor - 1)
            if record.key == key:
                return prev, cursor - 1, record
            prev = cursor - 1
            cursor = self.slab.read_next(cursor - 1, 0)
        return prev, None, None

    def list(self):
        """All file names, directory order."""
        names = []
        cursor = self.slab.read_next(self.head_slot, 0)
        while cursor:
            record = self.slab.read_record(cursor - 1)
            names.append(record.key.decode(errors="replace"))
            cursor = self.slab.read_next(cursor - 1, 0)
        return names

    def exists(self, name):
        return self._find(name)[1] is not None

    # ----------------------------------------------------------------- writes

    def write(self, name, data, ctx=NULL_CONTEXT, mtime=None):
        """Create/replace a file by copying ``data`` into pool pages.

        The classic path: data originates locally, so it is copied into
        packet buffers (and would go out via GSO/TSO when sent).
        """
        if self.exists(name):
            self.unlink(name, ctx)
        refs, frag_tuples = [], []
        offset = 0
        slot_size = self.pool.slot_size
        try:
            while offset < len(data):
                chunk = data[offset:offset + slot_size]
                buf = self.pool.alloc()
                refs.append(buf)
                buf.write(0, chunk)
                buf.flush(0, len(chunk), ctx, "persist")
                frag_tuples.append((buf.slot, 0, len(chunk)))
                offset += len(chunk)
            if frag_tuples:
                self.pool.region.fence(ctx, "persist")
            slot = self._link_inode(
                name, refs, frag_tuples, len(data), crc32c(data),
                mtime if mtime is not None else 0, ctx,
            )
        except Exception:
            # Nothing is linked yet: releasing the pages restores the
            # pre-write state (minus the already-replaced old file).
            for buf in refs:
                buf.put()
            raise
        self.stats["creates"] += 1
        return slot

    def ingest(self, name, message, ctx=NULL_CONTEXT):
        """Create/replace a file from a received HTTP message, zero-copy.

        The §4.2 receive path: the body's packet buffers become the
        file's extents; the NIC hardware timestamp becomes the mtime.
        """
        if self.exists(name):
            self.unlink(name, ctx)
        refs, frag_tuples = [], []
        checksum = 0
        try:
            for chunk in message.body_slices:
                buf, offset, length = chunk.buffer_ref()
                refs.append(buf.get())
                frag_tuples.append((buf.slot, offset, length))
                buf.flush(offset, length, ctx, "persist")
                checksum = crc32c(chunk.bytes(), seed=checksum)
            if frag_tuples:
                self.pool.region.fence(ctx, "persist")
            slot = self._link_inode(
                name, refs, frag_tuples, message.content_length, checksum,
                message.hw_tstamp or 0, ctx,
            )
        except Exception:
            # Drop the extra data references taken above; the message's
            # own references are untouched, so the caller's rx path
            # keeps its exact refcounts.
            for buf in refs:
                buf.put()
            raise
        self.stats["ingests"] += 1
        return slot

    def _link_inode(self, name, refs, frag_tuples, size, checksum, mtime, ctx):
        key = name.encode() if isinstance(name, str) else bytes(name)
        # Extent continuation chain, persisted deepest-first.  Any
        # failure before the directory link (slab exhaustion, a name too
        # long for the record key) rolls the allocated slots back —
        # mirroring PacketStore.put; the caller rolls back the refs.
        cont_slot_plus1 = 0
        allocated = []
        try:
            extra = frag_tuples[INLINE_FRAGS:]
            if extra:
                chunks = [extra[i:i + INLINE_FRAGS] for i in range(0, len(extra), INLINE_FRAGS)]
                for chunk in reversed(chunks):
                    slot = self.slab.alloc(ctx)
                    allocated.append(slot)
                    self.slab.write_record(
                        slot,
                        PPktRecord(kind=KIND_CONT, frags=chunk, cont=cont_slot_plus1),
                        ctx,
                    )
                    cont_slot_plus1 = slot + 1
            inode_slot = self.slab.alloc(ctx)
            allocated.append(inode_slot)
            first = self.slab.read_next(self.head_slot, 0)
            inode = PPktRecord(
                kind=KIND_INODE, height=1, key=key, value_len=size,
                hw_tstamp=mtime, wire_csum=checksum,
                cont=cont_slot_plus1, frags=frag_tuples[:INLINE_FRAGS],
                nexts=[first] + [0] * 7,
            )
            self.slab.write_record(inode_slot, inode, ctx)
        except Exception:
            for slot in allocated:
                self.slab.free(slot, ctx)
            raise
        self._refs[inode_slot] = refs
        # Commit: the directory link.
        self.slab.write_next(self.head_slot, 0, inode_slot + 1, ctx, fence=True)
        return inode_slot

    # ------------------------------------------------------------------ reads

    def _extents(self, record):
        frags = list(record.frags)
        cont = record.cont
        while cont:
            cont_record = self.slab.read_record(cont - 1)
            frags.extend(cont_record.frags)
            cont = cont_record.cont
        return frags

    def read(self, name, ctx=NULL_CONTEXT, verify=False):
        """The whole file as bytes."""
        _prev, slot, record = self._find(name)
        if slot is None:
            raise PktFSError(f"no such file: {name!r}")
        self.stats["reads"] += 1
        data = b"".join(
            self.pool.region.read(self.pool.slot_region_base(buf_slot) + off, length)
            for buf_slot, off, length in self._extents(record)
        )
        if verify and crc32c(data) != record.wire_csum:
            raise PktFSError(f"{name!r}: content checksum mismatch")
        return data

    def extent_refs(self, name):
        """Zero-copy view: [(PacketBuffer, offset, length), ...]."""
        _prev, slot, record = self._find(name)
        if slot is None:
            raise PktFSError(f"no such file: {name!r}")
        by_slot = {buf.slot: buf for buf in self._refs.get(slot, [])}
        return [
            (by_slot[buf_slot], off, length)
            for buf_slot, off, length in self._extents(record)
        ]

    def send_file(self, name, socket, ctx=NULL_CONTEXT):
        """Transmit a file without copying: extents become TCP frags."""
        total = 0
        for buf, offset, length in self.extent_refs(name):
            socket.send_buffer(buf, offset, length, ctx)
            total += length
        return total

    def stat(self, name):
        _prev, slot, record = self._find(name)
        if slot is None:
            raise PktFSError(f"no such file: {name!r}")
        return FileStat(
            record.key.decode(errors="replace"), record.value_len,
            record.hw_tstamp, record.wire_csum, len(self._extents(record)),
        )

    # ----------------------------------------------------------------- unlink

    def unlink(self, name, ctx=NULL_CONTEXT):
        """Remove a file: unlink the inode, free records and buffers."""
        prev, slot, record = self._find(name)
        if slot is None:
            raise PktFSError(f"no such file: {name!r}")
        successor = self.slab.read_next(slot, 0)
        self.slab.write_next(prev, 0, successor, ctx, fence=True)
        cont = record.cont
        while cont:
            cont_record = self.slab.read_record(cont - 1)
            self.slab.free(cont - 1, ctx)
            cont = cont_record.cont
        self.slab.free(slot, ctx)
        for buf in self._refs.pop(slot, []):
            buf.put()
        self.stats["unlinks"] += 1

    def __repr__(self):
        return f"<PktFS {len(self.list())} files, slab={self.slab!r}>"
