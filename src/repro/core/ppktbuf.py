"""Persistent packet metadata (§4.1, §5.1).

The paper's central object: packet metadata redesigned to live in
persistent memory.  A :class:`PPktRecord` is what survives of an
``sk_buff`` once it becomes a storage structure:

- references to payload in PM packet buffers (up to four inline
  fragments, chainable for more — the ``skb_shared_info`` pages of
  Figure 3),
- the NIC **hardware timestamp** (storage timestamp for free),
- the NIC-verified **TCP wire checksum** (storage integrity for free),
- **skip-list next pointers**, making the metadata itself an index
  node (§4.2's "persistent, mutable skip list ... implementable using
  packet metadata"),
- a CRC over the immutable fields, so recovery can reject torn
  records.

Records are fixed 256-byte slots (four cache lines — §5.1 asks for
compact, cache-friendly metadata; kernel ``sk_buff`` is ~232 bytes of
metadata *before* counting the separate shared-info block).  They live
in a :class:`PMetaSlab`: a PM region of slots with a volatile free
list that recovery rebuilds by reachability, so the slab needs **no
persistent allocator metadata at all** — one of the paper's claimed
wins over user-space PM allocators.

Record layout::

     0  u32 magic
     4  u32 record_crc      over [8:48) + frag area + key bytes
     8  u8  kind            (1 node, 2 head, 3 continuation, 4 inode, 5 extent)
     9  u8  flags           (1 VALID, 2 TOMBSTONE)
    10  u8  height          (skip-list height, <= 8)
    11  u8  nfrags          (frags in this record, <= 4)
    12  u16 key_len
    14  u16 reserved
    16  u64 seq
    24  u64 hw_tstamp_ns
    32  u32 wire_csum
    36  u32 value_len       (total across the chain)
    40  u64 cont            (slot+1 of the continuation record; 0 none)
    48  4 * (u32 buf_slot, u16 off, u16 len)
    80  8 * u64 next        (slot+1; 0 nil) — mutable, outside the CRC
   144  key bytes           (<= 112)
"""

import struct

from repro.net.checksum import crc32c
from repro.sim.context import NULL_CONTEXT

RECORD_SIZE = 256
RECORD_MAGIC = 0x9C7B0F5E

KIND_NODE = 1
KIND_HEAD = 2
KIND_CONT = 3
KIND_INODE = 4
KIND_EXTENT = 5

FLAG_VALID = 1
FLAG_TOMBSTONE = 2

MAX_HEIGHT = 8
INLINE_FRAGS = 4
MAX_KEY = RECORD_SIZE - 144

_FIXED = struct.Struct("<BBBBHHQQIIQ")  # bytes [8:48)
_FRAG = struct.Struct("<IHH")
_NEXT_OFF = 80
_KEY_OFF = 144
_FRAG_OFF = 48

#: Modeled CPU cost of taking a slot off the slab free list.  The paper
#: argues network buffer allocators are much cheaper than user-space PM
#: allocators (§4.2, citing CompoundFS's allocation-overhead findings).
SLAB_ALLOC_NS = 100.0


class SlabExhausted(MemoryError):
    """No free metadata slots."""


class PPktRecord:
    """Decoded view of one persistent packet-metadata record."""

    __slots__ = ("kind", "flags", "height", "key", "seq", "hw_tstamp",
                 "wire_csum", "value_len", "cont", "frags", "nexts")

    def __init__(self, kind=KIND_NODE, flags=FLAG_VALID, height=1, key=b"",
                 seq=0, hw_tstamp=0, wire_csum=0, value_len=0, cont=0,
                 frags=None, nexts=None):
        if len(key) > MAX_KEY:
            raise ValueError(f"key of {len(key)}B exceeds {MAX_KEY}B record capacity")
        if height > MAX_HEIGHT:
            raise ValueError(f"height {height} exceeds {MAX_HEIGHT}")
        self.kind = kind
        self.flags = flags
        self.height = height
        self.key = bytes(key)
        self.seq = seq
        self.hw_tstamp = int(hw_tstamp or 0)
        self.wire_csum = wire_csum or 0
        self.value_len = value_len
        #: Continuation slot + 1 (0 = none).
        self.cont = cont
        #: List of (buf_slot, offset, length) payload references.
        self.frags = list(frags or [])
        #: next[i] = slot + 1 (0 = nil).
        self.nexts = list(nexts or [0] * MAX_HEIGHT)
        if len(self.frags) > INLINE_FRAGS:
            raise ValueError("more than INLINE_FRAGS frags need a continuation record")

    @property
    def tombstone(self):
        return bool(self.flags & FLAG_TOMBSTONE)

    # -- encoding ---------------------------------------------------------------

    def _fixed_bytes(self):
        return _FIXED.pack(
            self.kind, self.flags, self.height, len(self.frags),
            len(self.key), 0, self.seq, self.hw_tstamp,
            self.wire_csum & 0xFFFFFFFF, self.value_len, self.cont,
        )

    def _frag_bytes(self):
        parts = []
        for slot, off, length in self.frags:
            parts.append(_FRAG.pack(slot, off, length))
        parts.append(bytes(_FRAG.size * (INLINE_FRAGS - len(self.frags))))
        return b"".join(parts)

    def crc(self):
        return crc32c(self._fixed_bytes() + self._frag_bytes() + self.key)

    def encode(self):
        blob = bytearray(RECORD_SIZE)
        blob[0:4] = struct.pack("<I", RECORD_MAGIC)
        blob[4:8] = struct.pack("<I", self.crc())
        blob[8:48] = self._fixed_bytes()
        blob[_FRAG_OFF:_FRAG_OFF + 32] = self._frag_bytes()
        for index, nxt in enumerate(self.nexts):
            struct.pack_into("<Q", blob, _NEXT_OFF + 8 * index, nxt)
        blob[_KEY_OFF:_KEY_OFF + len(self.key)] = self.key
        return bytes(blob)

    @classmethod
    def decode(cls, blob, check=True):
        """Parse a record; raises ValueError on magic/CRC failure if ``check``."""
        (magic,) = struct.unpack_from("<I", blob, 0)
        if magic != RECORD_MAGIC:
            raise ValueError("bad record magic")
        (stored_crc,) = struct.unpack_from("<I", blob, 4)
        (kind, flags, height, nfrags, key_len, _rsvd, seq,
         hw_tstamp, wire_csum, value_len, cont) = _FIXED.unpack_from(blob, 8)
        frags = []
        for index in range(nfrags):
            frags.append(_FRAG.unpack_from(blob, _FRAG_OFF + _FRAG.size * index))
        nexts = [struct.unpack_from("<Q", blob, _NEXT_OFF + 8 * i)[0]
                 for i in range(MAX_HEIGHT)]
        key = bytes(blob[_KEY_OFF:_KEY_OFF + key_len])
        record = cls(kind, flags, height, key, seq, hw_tstamp, wire_csum,
                     value_len, cont, frags, nexts)
        if check and record.crc() != stored_crc:
            raise ValueError("record CRC mismatch")
        return record

    @staticmethod
    def validate(blob):
        """True iff ``blob`` holds a structurally intact record."""
        try:
            PPktRecord.decode(blob, check=True)
            return True
        except (ValueError, struct.error):
            return False

    def __repr__(self):
        return (
            f"<PPktRecord kind={self.kind} key={self.key!r} seq={self.seq} "
            f"len={self.value_len} frags={len(self.frags)}>"
        )


class PMetaSlab:
    """Fixed-slot metadata arena in PM with reachability-based recovery.

    Slot state is *implied*: a slot is live iff some reachable record
    points at it (or it is the root).  Allocation is a pop off a
    volatile free list; recovery hands the slab the set of reachable
    slots and everything else returns to the free list.  No free-list
    bytes ever hit PM.
    """

    ROOT_SIZE = 64
    _ROOT = struct.Struct("<IQQ")
    _ROOT_MAGIC = 0x51AB0075

    def __init__(self, region, charge_category="datamgmt.insert"):
        self.region = region
        self.charge_category = charge_category
        self.nslots = (region.size - self.ROOT_SIZE) // RECORD_SIZE
        if self.nslots < 2:
            raise ValueError("metadata region too small")
        self._free = list(range(self.nslots - 1, -1, -1))
        self._used = set()
        self.allocs = 0
        self.frees = 0

    # -- root pointer -----------------------------------------------------------

    def write_root(self, head_slot, ctx=NULL_CONTEXT):
        self.region.write(0, self._ROOT.pack(self._ROOT_MAGIC, head_slot, 0))
        self.region.persist(0, self._ROOT.size, ctx, "persist")

    def read_root(self):
        magic, head_slot, _ = self._ROOT.unpack(self.region.read(0, self._ROOT.size))
        if magic != self._ROOT_MAGIC:
            raise ValueError("no slab root")
        return head_slot

    # -- slots -------------------------------------------------------------------

    def slot_base(self, slot):
        if not 0 <= slot < self.nslots:
            raise IndexError(f"slot {slot} out of range")
        return self.ROOT_SIZE + slot * RECORD_SIZE

    def alloc(self, ctx=NULL_CONTEXT):
        if not self._free:
            raise SlabExhausted(f"{self.region.name}: all {self.nslots} records used")
        ctx.charge(SLAB_ALLOC_NS, self.charge_category)
        slot = self._free.pop()
        self._used.add(slot)
        self.allocs += 1
        return slot

    def free(self, slot, ctx=NULL_CONTEXT):
        if slot not in self._used:
            raise RuntimeError(f"free of unused slot {slot}")
        # Invalidate the magic so a later reachability scan cannot be
        # confused by a stale-but-intact record.
        self.region.write(self.slot_base(slot), b"\x00\x00\x00\x00")
        self.region.flush(self.slot_base(slot), 4, ctx, "persist")
        self._used.remove(slot)
        self._free.append(slot)
        self.frees += 1

    @property
    def used(self):
        return len(self._used)

    # -- record I/O ---------------------------------------------------------------

    def write_record(self, slot, record, ctx=NULL_CONTEXT, persist=True):
        base = self.slot_base(slot)
        self.region.write(base, record.encode())
        if persist:
            self.region.persist(base, RECORD_SIZE, ctx, "persist")

    def read_record(self, slot, check=False):
        return PPktRecord.decode(self.region.read(self.slot_base(slot), RECORD_SIZE),
                                 check=check)

    def read_next(self, slot, level):
        (nxt,) = struct.unpack(
            "<Q", self.region.read(self.slot_base(slot) + _NEXT_OFF + 8 * level, 8)
        )
        return nxt

    def write_next(self, slot, level, target, ctx=NULL_CONTEXT, fence=True):
        addr = self.slot_base(slot) + _NEXT_OFF + 8 * level
        self.region.write(addr, struct.pack("<Q", target))
        self.region.flush(addr, 8, ctx, "persist")
        if fence:
            self.region.fence(ctx, "persist")

    def valid_record(self, slot):
        """Decode + CRC-check; returns the record or None."""
        try:
            return self.read_record(slot, check=True)
        except (ValueError, struct.error):
            return None

    # -- recovery ----------------------------------------------------------------

    def adopt_reachable(self, reachable):
        """Reset the free list given the set of reachable slots."""
        self._used = set(reachable)
        self._free = [slot for slot in range(self.nslots - 1, -1, -1)
                      if slot not in self._used]
        return len(self._used)

    def __repr__(self):
        return f"<PMetaSlab {self.used}/{self.nslots} records in {self.region.name}>"
