"""Overload control for the serving path.

The paper's proposal (§4) deliberately erases the boundary between the
network stack's packet memory and the store's data memory: values live
in the rx packet pool, index records in a PM slab, memtables in a PM
arena.  The price of that coupling is that *one exhausted pool is now a
storage outage* — and, symmetrically, a full store pins rx buffers
until the NIC drops frames.  "Observations on Porting In-memory KV
stores to PM" (PAPERS.md) documents exactly this failure class in
naive PM ports.

This module is the control layer that keeps exhaustion survivable:

- **Pressure sources** — anything with ``under_pressure`` +
  ``add_pressure_listener`` (``BufferPool``, ``PMAllocator``, the
  :class:`SlabPressure` adapter for :class:`~repro.core.ppktbuf.PMetaSlab`,
  and :class:`QueuePressure` over a host's CPU run queues)
  registers with :meth:`OverloadController.watch`.
- **Admission control** — :meth:`OverloadController.admit` sheds (or,
  optionally, defers) mutating requests while any source is pressured,
  after first attempting reclamation.
- **Emergency reclaim** — :meth:`OverloadController.relieve` runs the
  registered reclaimers (PacketStore GC, LSM rotate+flush) to free
  capacity off the request path.
- **Degrade decisions** — :meth:`should_degrade_zero_copy` tells the
  server to answer GETs from the copy path while pressured, so
  responses don't take *new* long-lived references into the scarce
  pool (a zero-copy response pins its frags in the retransmission
  queue until the client ACKs).
- **Failure → status mapping** — :func:`status_for_failure` is the
  single place the status-code contract lives (docs/RESILIENCE.md):
  503 for transient overload, 507 for a full store.
"""

from repro.core.ppktbuf import SlabExhausted
from repro.net.pool import PoolExhausted
from repro.pm.alloc import AllocationError
from repro.sim.context import NULL_CONTEXT

#: The status-code contract for resource exhaustion.
OVERLOADED = 503      # transient: shed request / packet pool empty — retry
STORAGE_FULL = 507    # durable state full: PM slab or arena exhausted

#: Exception types the serving layer contains per-request instead of
#: letting them unwind into TCP receive processing.
CONTAINABLE = (PoolExhausted, SlabExhausted, AllocationError, MemoryError)


def status_for_failure(exc):
    """Map a resource-exhaustion failure to its HTTP status.

    ``SlabExhausted``/``AllocationError`` mean persistent state is full
    (507: retrying without deleting something cannot succeed);
    ``PoolExhausted`` and any other ``MemoryError`` are transient
    packet-memory shortages (503: retry after backoff).  Returns None
    for exceptions outside the contract.
    """
    if isinstance(exc, (SlabExhausted, AllocationError)):
        return STORAGE_FULL
    if isinstance(exc, MemoryError):
        return OVERLOADED
    return None


class SlabPressure:
    """Watermark adapter giving :class:`PMetaSlab` the pressure protocol.

    The slab is a fixed-slot allocator without listeners of its own;
    this wraps it with the same hysteresis the pools implement.  Poll
    via :meth:`update` (the overload controller does so on every
    admission decision).
    """

    def __init__(self, slab, high_watermark=0.9, low_watermark=0.7):
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError("need 0 < low_watermark <= high_watermark <= 1")
        self.slab = slab
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.under_pressure = False
        self.pressure_events = 0
        self._pressure_listeners = []

    @property
    def occupancy(self):
        return self.slab.used / self.slab.nslots

    def add_pressure_listener(self, callback):
        self._pressure_listeners.append(callback)
        return callback

    def remove_pressure_listener(self, callback):
        self._pressure_listeners.remove(callback)

    def update(self):
        occ = self.occupancy
        if not self.under_pressure and occ >= self.high_watermark:
            self.under_pressure = True
            self.pressure_events += 1
            for listener in self._pressure_listeners:
                listener(self, True)
        elif self.under_pressure and occ < self.low_watermark:
            self.under_pressure = False
            for listener in self._pressure_listeners:
                listener(self, False)


class QueuePressure:
    """CPU-queue-delay pressure: the knee detector for open-loop load.

    Memory watermarks never fire past the CPU saturation knee when the
    in-flight request count is bounded (a socket pool of N can pin at
    most N rx buffers) — yet that is exactly where an open-loop soak
    lives: offered load above capacity makes core run queues grow
    without bound while every pool stays comfortable.  This source
    watches the *scheduling delay* of the least-loaded core (work
    steals to the emptiest queue, so the minimum is what a new request
    actually waits) and trips with hysteresis, giving the admission
    path a signal that engages before the latency tail does.

    Polled via :meth:`update` like :class:`SlabPressure` — the
    controller calls it on every admission decision, so no timer is
    needed and the signal is exactly as fresh as the decisions it
    gates.
    """

    def __init__(self, host, high_ns=200_000.0, low_ns=50_000.0):
        if not 0.0 < low_ns <= high_ns:
            raise ValueError("need 0 < low_ns <= high_ns")
        self.host = host
        self.high_ns = high_ns
        self.low_ns = low_ns
        self.under_pressure = False
        self.pressure_events = 0
        self._pressure_listeners = []

    @property
    def queue_delay_ns(self):
        """Scheduling delay a newly-arrived request would see now."""
        now = self.host.sim.now
        return min(core.queue_delay(now) for core in self.host.cpus.cores)

    def add_pressure_listener(self, callback):
        self._pressure_listeners.append(callback)
        return callback

    def remove_pressure_listener(self, callback):
        self._pressure_listeners.remove(callback)

    def update(self):
        delay = self.queue_delay_ns
        if not self.under_pressure and delay >= self.high_ns:
            self.under_pressure = True
            self.pressure_events += 1
            for listener in self._pressure_listeners:
                listener(self, True)
        elif self.under_pressure and delay <= self.low_ns:
            self.under_pressure = False
            for listener in self._pressure_listeners:
                listener(self, False)


class OverloadController:
    """Admission, reclamation and degrade decisions for one server.

    Wire it up with :meth:`watch` (pressure sources) and
    :meth:`add_reclaimer` (``fn(ctx) -> freed_count``); the KV servers
    do this automatically for the host pools and their engine when
    handed a controller.

    ``max_deferred > 0`` parks shed requests in a bounded queue and
    replays them when pressure clears instead of answering 503.
    Deferral keeps the request's packet references alive while parked,
    so it only helps when the pressured resource is *not* the rx pool
    the request occupies — shedding is the safe default.
    """

    def __init__(self, sim=None, shed_on_pressure=True,
                 degrade_zero_copy=True, reclaim_on_pressure=True,
                 max_deferred=0):
        self.sim = sim
        self.shed_on_pressure = shed_on_pressure
        self.degrade_zero_copy = degrade_zero_copy
        self.reclaim_on_pressure = reclaim_on_pressure
        self.max_deferred = max_deferred
        self._sources = []
        self._polled = []       # sources needing explicit update() polls
        self._reclaimers = []
        self._deferred = []
        self._drain_scheduled = False
        self.stats = {
            "shed": 0, "deferred": 0, "replayed": 0, "reclaims": 0,
            "reclaimed": 0, "pressure_transitions": 0, "degrade_decisions": 0,
        }

    # -- wiring ---------------------------------------------------------------

    def watch(self, source):
        """Subscribe to a pressure source (pool, arena, or adapter)."""
        if source in self._sources:
            return source
        source.add_pressure_listener(self._on_pressure)
        self._sources.append(source)
        if hasattr(source, "update"):
            self._polled.append(source)
        return source

    def watch_slab(self, slab, high_watermark=0.9, low_watermark=0.7):
        """Convenience: wrap a :class:`PMetaSlab` and watch it."""
        return self.watch(SlabPressure(slab, high_watermark, low_watermark))

    def add_reclaimer(self, fn):
        """Register an emergency reclaimer: ``fn(ctx) -> freed count``."""
        if fn not in self._reclaimers:
            self._reclaimers.append(fn)
        return fn

    def _on_pressure(self, source, pressured):
        self.stats["pressure_transitions"] += 1
        if not pressured and self._deferred:
            self._schedule_drain()

    # -- decisions ------------------------------------------------------------

    @property
    def under_pressure(self):
        for source in self._polled:
            source.update()
        return any(source.under_pressure for source in self._sources)

    def admit(self, ctx=NULL_CONTEXT):
        """Admission decision for one mutating request.

        Under pressure this first attempts emergency reclamation; only
        if pressure persists is the request shed (False).  Callers that
        prefer deferral use :meth:`try_defer` on a False return.
        """
        if not self.under_pressure:
            return True
        if self.reclaim_on_pressure:
            self.relieve(ctx)
            if not self.under_pressure:
                return True
        if self.shed_on_pressure:
            self.stats["shed"] += 1
            return False
        return True

    def should_degrade_zero_copy(self):
        """True while GETs should answer from the copy path."""
        degrade = self.degrade_zero_copy and self.under_pressure
        if degrade:
            self.stats["degrade_decisions"] += 1
        return degrade

    # -- reclamation ----------------------------------------------------------

    def relieve(self, ctx=NULL_CONTEXT):
        """Run every registered reclaimer once; returns items freed."""
        self.stats["reclaims"] += 1
        freed = 0
        for reclaim in self._reclaimers:
            freed += reclaim(ctx) or 0
        self.stats["reclaimed"] += freed
        return freed

    # -- deferral -------------------------------------------------------------

    def try_defer(self, thunk):
        """Park ``thunk`` for replay when pressure clears.

        Returns False (caller should shed) when deferral is disabled or
        the queue is full.  The thunk must be self-contained: it re-runs
        the request end to end, including releasing its references.
        """
        if self.max_deferred <= 0 or len(self._deferred) >= self.max_deferred:
            return False
        self._deferred.append(thunk)
        self.stats["deferred"] += 1
        return True

    def _schedule_drain(self):
        # Pressure listeners fire from inside allocator bookkeeping —
        # never re-enter request processing from there.  Replay in a
        # fresh simulation event (or lazily, at the next admit, when no
        # simulator is attached).
        if self.sim is None or self._drain_scheduled:
            return
        self._drain_scheduled = True
        self.sim.schedule(0, self._drain_deferred)

    def _drain_deferred(self):
        self._drain_scheduled = False
        while self._deferred and not self.under_pressure:
            thunk = self._deferred.pop(0)
            self.stats["replayed"] += 1
            thunk()

    def __repr__(self):
        pressured = [s for s in self._sources if s.under_pressure]
        return (
            f"<OverloadController sources={len(self._sources)} "
            f"pressured={len(pressured)} shed={self.stats['shed']}>"
        )
